"""EXP-F2 — Fig. 2: an exemplary estimated CIR from the DW1000 model.

Reproduces the paper's Fig. 2: a CIR captured in an indoor environment
showing the LOS component (tau_0) and several significant multipath
reflections (tau_1..tau_5), estimated by the DW1000 accumulator model.

The figure itself is one deterministic capture (``capture_example_cir``
is bit-stable for a fixed seed); ``run`` additionally quantifies how
robust that picture is with a Monte-Carlo sweep over the diffuse tail
and accumulator noise on the :mod:`repro.runtime` executor, so ``--seed``
/ ``--workers`` (and checkpointing) apply and serial == parallel holds.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.analysis.cir_features import peak_to_noise_ratio
from repro.analysis.tables import Table
from repro.experiments.common import ExperimentResult, standard_run
from repro.radio.dw1000 import DW1000Radio, SignalArrival
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.pulses import dw1000_pulse

LINK_DISTANCE_M = 6.5
N_SIGNIFICANT = 6  # tau_0 .. tau_5 in the paper's figure


#: The exemplary office channel of Fig. 2: excess delays [ns] and
#: relative amplitudes (dB below LOS) of the five significant MPCs.
FIG2_REFLECTIONS = (
    (5.0, -4.0),
    (12.0, -6.5),
    (19.0, -8.0),
    (28.0, -10.0),
    (39.0, -12.0),
)


def capture_example_cir(seed: int = 2) -> tuple:
    """One DW1000 CIR capture through an exemplary office channel.

    The paper's Fig. 2 is illustrative (one capture with a dominant LOS
    and five labelled reflections), so the specular structure is laid
    out explicitly and the diffuse tail is drawn stochastically.
    """
    return _build_example(np.random.default_rng(seed))


def _build_example(rng: np.random.Generator) -> tuple:
    """The exemplary capture from an explicit generator (trial entry)."""
    from repro.channel.cir import (
        ChannelRealization,
        ChannelTap,
        diffuse_tail_taps,
    )
    from repro.channel.propagation import propagation_delay_s
    from repro.channel.geometry import CHANNEL7_CARRIER_HZ
    from repro.channel.propagation import PathLossModel

    base_delay = propagation_delay_s(LINK_DISTANCE_M)
    los_gain = PathLossModel.friis(CHANNEL7_CARRIER_HZ).amplitude_gain(
        LINK_DISTANCE_M
    )
    taps = [ChannelTap(delay_s=base_delay, amplitude=los_gain, kind="los", order=0)]
    for excess_ns, level_db in FIG2_REFLECTIONS:
        amplitude = (
            los_gain
            * 10.0 ** (level_db / 20.0)
            * np.exp(1j * rng.uniform(0, 2 * np.pi))
        )
        taps.append(
            ChannelTap(
                delay_s=base_delay + excess_ns * 1e-9,
                amplitude=complex(amplitude),
                kind="reflection",
                order=1,
            )
        )
    taps.extend(
        diffuse_tail_taps(
            onset_delay_s=base_delay + 1e-9,
            total_power=0.02 * los_gain**2,
            rng=rng,
        )
    )
    channel = ChannelRealization(taps)
    radio = DW1000Radio()
    arrival = SignalArrival(
        channel=channel, pulse=dw1000_pulse(), tx_time_s=0.0, source_id=0
    )
    capture = radio.capture_cir([arrival], rng)
    return capture, channel


def _trial(rng: np.random.Generator, index: int) -> tuple:
    """One Monte-Carlo repetition of the Fig. 2 capture.

    Draws a fresh diffuse tail, reflection phases, and accumulator noise
    from the trial's own stream; returns ``(n_detected, snr_db)``.
    """
    capture, _channel = _build_example(rng)
    detector = SearchAndSubtract(
        dw1000_pulse(),
        SearchAndSubtractConfig(max_responses=N_SIGNIFICANT, min_peak_snr=6.0),
    )
    detected = detector.detect(
        capture.samples, capture.sampling_period_s, noise_std=capture.noise_std
    )
    snr_db = 20.0 * np.log10(peak_to_noise_ratio(capture.samples))
    return float(len(detected)), float(snr_db)


@standard_run(
    "seed", "trials", "workers", "metrics", "checkpoint_dir",
    renames={"checkpoint_dir": "checkpoint"},
)
def run(
    *,
    trials: int = 25,
    seed: int = 2,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Capture a CIR and extract the tau_0..tau_5 structure.

    The headline figure (and the ``detected_components`` metric) comes
    from the deterministic exemplary capture for ``seed``; the
    Monte-Carlo layer reruns the capture ``trials`` times on the trial
    executor to report how often all six components resolve.

    ``batch_size`` is accepted for the standard run signature and
    ignored (single-capture trials, no batched engine); ``checkpoint``
    persists Monte-Carlo trial checkpoints for resumable runs.
    """
    del batch_size  # standard-signature parameter; no batched engine here
    result = ExperimentResult(
        experiment_id="Fig. 2",
        description="estimated CIR with LOS and multipath components",
    )
    capture, channel = capture_example_cir(seed)

    detector = SearchAndSubtract(
        dw1000_pulse(),
        SearchAndSubtractConfig(max_responses=N_SIGNIFICANT, min_peak_snr=6.0),
    )
    detected = detector.detect(
        capture.samples, capture.sampling_period_s, noise_std=capture.noise_std
    )

    table = Table(
        ["component", "excess delay [ns]", "relative power [dB]"],
        title="Fig. 2 reproduction: detected components",
    )
    if detected:
        tau0 = detected[0].delay_s
        peak_power = max(abs(d.amplitude) for d in detected)
        for k, component in enumerate(detected):
            table.add_row(
                [
                    f"tau_{k}",
                    (component.delay_s - tau0) * 1e9,
                    20.0 * np.log10(abs(component.amplitude) / peak_power),
                ]
            )
    result.add_table(table)

    result.compare(
        "detected_components", float(len(detected)), paper=float(N_SIGNIFICANT)
    )
    result.compare(
        "snr_db",
        20.0 * np.log10(peak_to_noise_ratio(capture.samples)),
        paper=None,
        unit="dB",
    )
    result.compare(
        "true_specular_taps", float(len(channel.specular_taps())), paper=None
    )

    # Monte-Carlo robustness of the figure: fresh tails/noise per trial.
    report = run_trials(
        partial(_trial),
        trials,
        seed=(seed, 1),  # distinct from the exemplary capture's stream
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig2-mc",
    )
    counts = np.array([value[0] for value in report.values])
    snrs = np.array([value[1] for value in report.values])
    if len(counts):
        result.compare(
            "mc_all_components_rate",
            float(np.mean(counts >= N_SIGNIFICANT)),
            paper=None,
        )
        result.compare(
            "mc_mean_detected", float(np.mean(counts)),
            paper=float(N_SIGNIFICANT),
        )
        result.compare(
            "mc_mean_snr_db", float(np.mean(snrs)), paper=None, unit="dB"
        )
    result.note(
        "the paper's figure is a single capture; shape criterion is a "
        "dominant LOS followed by several resolvable reflections"
    )
    result.note(
        f"Monte-Carlo layer: {trials} independently seeded captures on "
        "the trial executor (identical for any --workers count)"
    )
    return result
