"""EXP-L1 — Future-work extension: anchor-based localization.

The paper's conclusion announces concurrent-ranging-based localization
as future work.  This experiment implements it: four anchors in a room,
a tag initiating one concurrent round per waypoint, robust
multilateration on the decoded (anchor, distance) pairs.

Every waypoint is one independently seeded trial on the
:mod:`repro.runtime` executor, so ``--workers`` sweeps are
byte-identical to serial runs and ``checkpoint`` resumes interrupted
tracks.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from repro.analysis.tables import Table
from repro.channel.geometry import Point
from repro.experiments.common import ExperimentResult, standard_run
from repro.localization.anchors import AnchorNetwork
from repro.localization.multilateration import gdop
from repro.runtime import MetricsRegistry, run_trials

#: A 10 m x 8 m room with anchors near the corners.
ANCHORS = (
    Point(0.5, 0.5),
    Point(9.5, 0.5),
    Point(9.5, 7.5),
    Point(0.5, 7.5),
)


def waypoints(n: int) -> list[Point]:
    """A rectangular walking path inside the anchor hull."""
    ts = np.linspace(0.0, 1.0, n, endpoint=False)
    points = []
    for t in ts:
        s = 4.0 * t
        if s < 1.0:
            points.append(Point(2.0 + 6.0 * s, 2.0))
        elif s < 2.0:
            points.append(Point(8.0, 2.0 + 4.0 * (s - 1.0)))
        elif s < 3.0:
            points.append(Point(8.0 - 6.0 * (s - 2.0), 6.0))
        else:
            points.append(Point(2.0, 6.0 - 4.0 * (s - 3.0)))
    return points


#: A fix whose range residuals exceed this RMS is flagged invalid — the
#: standard integrity gate of a deployed localization system (a grossly
#: inconsistent range set means an identification or detection failure).
RESIDUAL_GATE_M = 0.3


def _trial(
    rng: np.random.Generator, index: int, *, n_waypoints: int
) -> tuple:
    """One position fix at waypoint ``index`` of the walking path.

    Returns ``(error_m, rms_residual_m, anchors_used, gdop)`` — plain
    scalars so the parallel path ships small payloads.
    """
    waypoint = waypoints(n_waypoints)[index]
    network = AnchorNetwork(ANCHORS, seed=rng, n_slots=4, n_shapes=1)
    fix = network.locate(waypoint)
    return (
        fix.error_m,
        fix.fit.rms_residual_m,
        float(fix.anchors_used),
        gdop(ANCHORS, fix.true_position),
    )


@standard_run("n_waypoints", "seed", renames={"n_waypoints": "trials"})
def run(
    *,
    trials: int = 20,
    seed: int = 43,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Track the tag along the path and report position errors.

    ``trials`` is the waypoint count of the rectangular path (the
    legacy ``n_waypoints`` parameter).  ``batch_size`` is accepted for
    the standard run signature and ignored (one fix per trial).
    """
    del batch_size  # standard-signature parameter; no batched engine here
    metrics = metrics if metrics is not None else MetricsRegistry()
    report = run_trials(
        partial(_trial, n_waypoints=trials),
        trials,
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="localization",
    )
    values = np.array(report.values, dtype=float)
    errors = values[:, 0]
    residuals = values[:, 1]
    anchors_used = values[:, 2]
    gdops = values[:, 3]
    valid = residuals <= RESIDUAL_GATE_M
    valid_errors = errors[valid] if valid.any() else errors

    result = ExperimentResult(
        experiment_id="Localization (future work)",
        description="anchor-based localization via concurrent ranging",
    )
    table = Table(
        ["metric", "value"],
        title=f"position fixes over {trials} waypoints, 4 anchors",
    )
    table.add_row(["valid fix rate", float(np.mean(valid))])
    table.add_row(["median error (valid) [m]", float(np.median(valid_errors))])
    table.add_row(["p95 error (valid) [m]", float(np.percentile(valid_errors, 95))])
    table.add_row(["rmse (valid) [m]", float(np.sqrt(np.mean(valid_errors**2)))])
    table.add_row(["mean anchors used", float(np.mean(anchors_used))])
    table.add_row(["mean GDOP on path", float(np.mean(gdops))])
    result.add_table(table)

    result.compare("valid_fix_rate", float(np.mean(valid)), paper=None)
    result.compare(
        "median_error_m", float(np.median(valid_errors)), paper=None, unit="m"
    )
    result.compare(
        "messages_per_fix", 2.0, paper=float(2 * len(ANCHORS)), unit="messages"
    )
    result.note(
        "no paper reference numbers exist (future work); the comparison "
        "column for messages shows the saving vs per-anchor SS-TWR"
    )
    return result
