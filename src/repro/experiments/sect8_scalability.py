"""EXP-S8 — Sect. VIII: scalability of the combined scheme.

Three claims are checked:

1. RPM alone supports only ``N_RPM = delta_max * c / r_max`` responders
   (~4 at r_max = 75 m).
2. Combining RPM with ~100 pulse shapes at r_max = 20 m supports more
   than 1500 responders.
3. Message cost for full-network ranging drops from ``N (N - 1)``
   (scheduled SS-TWR) to ``N``-order (concurrent), with corresponding
   energy and channel-utilization gains.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.analysis.tables import Table
from repro.constants import RPM_MAX_OFFSET_M
from repro.core.rpm import paper_slot_count, safe_slot_count
from repro.experiments.common import ExperimentResult, standard_run
from repro.protocol.scheduling import network_sweep
from repro.runtime import MetricsRegistry, run_trials

#: Pulse-shape count the paper assumes for the >1500-responder claim.
PAPER_SHAPE_COUNT = 100

NETWORK_SIZES = (2, 5, 10, 20, 50, 100)


def _network_trial(
    rng: np.random.Generator, index: int, *, sizes: Sequence[int]
) -> tuple:
    """One network size's scheduled-vs-concurrent cost (closed form).

    The computation is deterministic — the trial seeding contract still
    applies, it simply goes unused — so running the sweep on the trial
    executor parallelises the table rows with results identical at any
    worker count.
    """
    scheduled, concurrent = network_sweep([int(sizes[index])])[0]
    return (
        scheduled.n_nodes,
        scheduled.messages,
        concurrent.messages,
        scheduled.energy_j,
        concurrent.energy_j,
        scheduled.duration_s,
        concurrent.duration_s,
    )


@standard_run(
    "seed", "workers", "metrics", "checkpoint_dir",
    renames={"checkpoint_dir": "checkpoint"},
)
def run(
    *,
    trials: int | None = None,
    seed: int = 0,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Recompute every Sect. VIII scalability number.

    The network sweep (one trial per network size) runs on
    :func:`repro.runtime.run_trials`, so ``--workers`` parallelises the
    rows and ``--checkpoint`` persists them.  ``trials`` and
    ``batch_size`` are accepted for the standard run signature and
    ignored: the sweep always runs exactly one (deterministic) trial
    per network size.
    """
    del trials, batch_size  # standard-signature parameters; unused
    result = ExperimentResult(
        experiment_id="Sect. VIII",
        description="scalability: slots, capacity, and message cost",
    )

    # -- claim 1 and 2: slots and capacity -------------------------------
    capacity = Table(
        ["r_max [m]", "N_RPM (paper formula)", "N_RPM (safe)",
         "N_max = N_RPM x 100 shapes"],
        title="responder capacity vs communication range",
    )
    for r_max in (75.0, 50.0, 20.0, 10.0):
        n_paper = paper_slot_count(r_max)
        capacity.add_row(
            [r_max, n_paper, safe_slot_count(r_max), n_paper * PAPER_SHAPE_COUNT]
        )
    result.add_table(capacity)

    result.compare("delta_max_distance_m", RPM_MAX_OFFSET_M, paper=307.0, unit="m")
    result.compare(
        "n_rpm_75m", float(paper_slot_count(75.0)), paper=4.0, unit="slots"
    )
    result.compare(
        "n_max_20m",
        float(paper_slot_count(20.0) * PAPER_SHAPE_COUNT),
        paper=1500.0,
        unit="responders",
    )

    # -- claim 3: message/energy cost ------------------------------------
    costs = Table(
        [
            "N nodes",
            "scheduled msgs (N(N-1))",
            "concurrent msgs",
            "scheduled energy [mJ]",
            "concurrent energy [mJ]",
            "duration ratio",
        ],
        title="full-network ranging cost",
    )
    report = run_trials(
        partial(_network_trial, sizes=NETWORK_SIZES),
        len(NETWORK_SIZES),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="sect8-network-sweep",
    )
    for row in report.values:
        (n_nodes, scheduled_msgs, concurrent_msgs,
         scheduled_j, concurrent_j, scheduled_s, concurrent_s) = row
        costs.add_row(
            [
                n_nodes,
                scheduled_msgs,
                concurrent_msgs,
                scheduled_j * 1e3,
                concurrent_j * 1e3,
                scheduled_s / concurrent_s,
            ]
        )
    result.add_table(costs)

    row_100 = report.values[NETWORK_SIZES.index(100)]
    result.compare(
        "scheduled_messages_n100",
        float(row_100[1]),
        paper=float(100 * 99),
    )
    result.compare(
        "concurrent_messages_n100", float(row_100[2]), paper=200.0
    )
    result.compare(
        "energy_gain_n100",
        row_100[3] / row_100[4],
        paper=None,
    )
    result.note(
        "paper counts the aggregated concurrent response as one message: "
        "N(N-1) -> order-N; energy and duration gains scale the same way"
    )
    return result
