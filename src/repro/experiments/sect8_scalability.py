"""EXP-S8 — Sect. VIII: scalability of the combined scheme.

Three claims are checked:

1. RPM alone supports only ``N_RPM = delta_max * c / r_max`` responders
   (~4 at r_max = 75 m).
2. Combining RPM with ~100 pulse shapes at r_max = 20 m supports more
   than 1500 responders.
3. Message cost for full-network ranging drops from ``N (N - 1)``
   (scheduled SS-TWR) to ``N``-order (concurrent), with corresponding
   energy and channel-utilization gains.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.constants import RPM_MAX_OFFSET_M
from repro.core.rpm import paper_slot_count, safe_slot_count
from repro.experiments.common import ExperimentResult
from repro.protocol.scheduling import network_sweep

#: Pulse-shape count the paper assumes for the >1500-responder claim.
PAPER_SHAPE_COUNT = 100

NETWORK_SIZES = (2, 5, 10, 20, 50, 100)


def run() -> ExperimentResult:
    """Recompute every Sect. VIII scalability number."""
    result = ExperimentResult(
        experiment_id="Sect. VIII",
        description="scalability: slots, capacity, and message cost",
    )

    # -- claim 1 and 2: slots and capacity -------------------------------
    capacity = Table(
        ["r_max [m]", "N_RPM (paper formula)", "N_RPM (safe)",
         "N_max = N_RPM x 100 shapes"],
        title="responder capacity vs communication range",
    )
    for r_max in (75.0, 50.0, 20.0, 10.0):
        n_paper = paper_slot_count(r_max)
        capacity.add_row(
            [r_max, n_paper, safe_slot_count(r_max), n_paper * PAPER_SHAPE_COUNT]
        )
    result.add_table(capacity)

    result.compare("delta_max_distance_m", RPM_MAX_OFFSET_M, paper=307.0, unit="m")
    result.compare(
        "n_rpm_75m", float(paper_slot_count(75.0)), paper=4.0, unit="slots"
    )
    result.compare(
        "n_max_20m",
        float(paper_slot_count(20.0) * PAPER_SHAPE_COUNT),
        paper=1500.0,
        unit="responders",
    )

    # -- claim 3: message/energy cost ------------------------------------
    costs = Table(
        [
            "N nodes",
            "scheduled msgs (N(N-1))",
            "concurrent msgs",
            "scheduled energy [mJ]",
            "concurrent energy [mJ]",
            "duration ratio",
        ],
        title="full-network ranging cost",
    )
    for scheduled, concurrent in network_sweep(NETWORK_SIZES):
        costs.add_row(
            [
                scheduled.n_nodes,
                scheduled.messages,
                concurrent.messages,
                scheduled.energy_j * 1e3,
                concurrent.energy_j * 1e3,
                scheduled.duration_s / concurrent.duration_s,
            ]
        )
    result.add_table(costs)

    scheduled_100, concurrent_100 = network_sweep([100])[0]
    result.compare(
        "scheduled_messages_n100",
        float(scheduled_100.messages),
        paper=float(100 * 99),
    )
    result.compare(
        "concurrent_messages_n100", float(concurrent_100.messages), paper=200.0
    )
    result.compare(
        "energy_gain_n100",
        scheduled_100.energy_j / concurrent_100.energy_j,
        paper=None,
    )
    result.note(
        "paper counts the aggregated concurrent response as one message: "
        "N(N-1) -> order-N; energy and duration gains scale the same way"
    )
    return result
