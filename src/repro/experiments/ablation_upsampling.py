"""EXP-A5 — Ablation: the FFT-upsampling step (Sect. IV, step 1).

The paper upsamples the CIR "in order to obtain a smoother signal" and
notes the step "is not necessarily required".  This ablation quantifies
what it actually buys: sweep the upsampling factor and measure the ToA
estimation precision (the std of the detected peak position against its
true sub-sample location) and the per-detection runtime.

Expected shape: precision improves sharply from 1x to ~4x (sub-sample
structure becomes visible to the parabolic refinement), saturates by
~8x, while runtime grows roughly linearly with the factor.

Ported to the :mod:`repro.runtime` trial executor: one trial per
upsampling factor, each drawing from its own spawned generator, so
``--workers`` parallelises the sweep and serial and parallel runs are
byte-identical (the runtime column is the only non-deterministic value
and never leaves the table).  The historical ``run(trials, seed)``
positional call keeps working through the
:func:`~repro.experiments.common.standard_run` shim.
"""

from __future__ import annotations

import time
from functools import partial
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import Table
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.experiments.common import ExperimentResult, standard_run
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse

FACTORS = (1, 2, 4, 8, 16)
SNR_DB = 28.0


def toa_precision(
    factor: int, trials: int, rng: np.random.Generator
) -> tuple[float, float]:
    """(position-error std in samples, mean seconds per detect)."""
    template = dw1000_pulse()
    detector = SearchAndSubtract(
        template,
        SearchAndSubtractConfig(max_responses=1, upsample_factor=factor),
    )
    amplitude = 10.0 ** (SNR_DB / 20.0)
    errors = []
    elapsed = 0.0
    for _ in range(trials):
        position = float(rng.uniform(200.0, 800.0))
        cir = np.zeros(1016, dtype=complex)
        phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
        place_pulse(
            cir, template.samples.astype(complex), position, amplitude * phase
        )
        cir += (
            rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
        ) / np.sqrt(2.0)
        start = time.perf_counter()
        responses = detector.detect(cir, CIR_SAMPLING_PERIOD_S, noise_std=1.0)
        elapsed += time.perf_counter() - start
        if responses:
            errors.append(responses[0].index - position)
    return float(np.std(errors)), elapsed / trials


def _upsampling_cell(
    rng: np.random.Generator,
    index: int,
    *,
    factors: Sequence[int],
    trials: int,
) -> Tuple[int, float, float]:
    """(factor, ToA error std in samples, mean s/detect) for one cell."""
    factor = int(factors[index])
    std_samples, seconds = toa_precision(factor, trials, rng)
    return factor, std_samples, seconds


@standard_run("trials", "seed")
def run(
    *,
    trials: int = 80,
    seed: int = 61,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: Optional[MetricsRegistry] = None,
) -> ExperimentResult:
    """Sweep the upsampling factor and report ToA precision vs cost.

    ``trials`` is the number of single-pulse detections per factor;
    ``batch_size`` is accepted for the standard run signature and
    ignored (each factor is one indivisible sweep cell).
    """
    del batch_size  # standard-signature parameter; unused
    result = ExperimentResult(
        experiment_id="Ablation A5",
        description="FFT upsampling factor vs ToA precision and runtime",
    )
    table = Table(
        ["upsample factor", "ToA error std [ps]", "runtime per detect [ms]"],
        title=f"{trials} single-pulse trials at {SNR_DB:.0f} dB SNR",
    )
    report = run_trials(
        partial(_upsampling_cell, factors=FACTORS, trials=trials),
        len(FACTORS),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="ablation-upsampling",
    )
    stds = {}
    for factor, std_samples, seconds in report.values:
        stds[factor] = std_samples
        table.add_row(
            [
                factor,
                std_samples * CIR_SAMPLING_PERIOD_S * 1e12,
                seconds * 1e3,
            ]
        )
    result.add_table(table)

    result.compare("toa_std_1x_ps",
                   stds[1] * CIR_SAMPLING_PERIOD_S * 1e12, paper=None)
    result.compare("toa_std_8x_ps",
                   stds[8] * CIR_SAMPLING_PERIOD_S * 1e12, paper=None)
    result.compare(
        "improvement_1x_to_8x", stds[1] / stds[8] if stds[8] > 0 else 0.0,
        paper=None,
    )
    result.note(
        "the paper's step 1 is optional for detection but buys sub-sample "
        "ToA precision; beyond ~8x the gain saturates while cost grows"
    )
    return result
