"""EXP-F1 — Fig. 1: multipath resolvability at 900 MHz vs 50 MHz.

Reproduces the paper's motivating figure: in a rectangular floor plan
(Fig. 1a) the receiver sees the LOS path and four first-order wall
reflections.  At 900 MHz bandwidth each component appears as a distinct
pulse; at 50 MHz the pulses smear into one overlapping hump (Fig. 1b),
which is why narrowband radios can neither resolve multipath nor support
concurrent ranging.

The two bandwidth renders run on the :mod:`repro.runtime` trial
executor (one trial per bandwidth), so ``run()`` carries the standard
``run(trials, seed, workers, batch_size, checkpoint)`` surface:
``--workers`` parallelises the renders and ``--checkpoint`` persists
them, with results identical at any worker count because the
computation is deterministic.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.analysis.cir_features import rise_time_s, significant_peaks
from repro.analysis.tables import Table
from repro.channel.cir import ChannelRealization
from repro.channel.geometry import Point, Room, image_source_taps
from repro.experiments.common import ExperimentResult, standard_run
from repro.runtime import MetricsRegistry, run_trials
from repro.signal.pulses import dw1000_pulse, narrowband_pulse

#: The floor plan of Fig. 1a (a 10 m x 5 m rectangular room).
ROOM_WIDTH_M = 10.0
ROOM_HEIGHT_M = 5.0
TX_POSITION = Point(2.0, 3.2)
RX_POSITION = Point(7.5, 1.6)

#: Fine sampling so even the 900 MHz pulse is well resolved on the plot.
SAMPLING_PERIOD_S = 0.25e-9

WIDEBAND_HZ = 900e6
NARROWBAND_HZ = 50e6

#: The two Fig. 1b traces, one executor trial each.
BANDWIDTHS_HZ = (WIDEBAND_HZ, NARROWBAND_HZ)


def received_waveform(bandwidth_hz: float) -> tuple[np.ndarray, ChannelRealization]:
    """The noiseless received waveform through the Fig. 1a channel."""
    room = Room(ROOM_WIDTH_M, ROOM_HEIGHT_M)
    taps = image_source_taps(room, TX_POSITION, RX_POSITION)
    channel = ChannelRealization(taps)
    if bandwidth_hz >= WIDEBAND_HZ:
        pulse = dw1000_pulse(sampling_period_s=SAMPLING_PERIOD_S)
    else:
        pulse = narrowband_pulse(bandwidth_hz, sampling_period_s=SAMPLING_PERIOD_S)
    # Window: from just before the LOS to past the latest reflection.
    start = channel.first_path.delay_s - 20e-9
    duration = channel.excess_delay_s + 80e-9
    n_samples = int(duration / SAMPLING_PERIOD_S)
    waveform = channel.render(
        pulse, n_samples, sampling_period_s=SAMPLING_PERIOD_S, time_origin_s=start
    )
    return waveform, channel


def resolved_component_count(
    waveform: np.ndarray, channel: ChannelRealization, tolerance_s: float = 1e-9
) -> int:
    """How many true multipath components have their own distinct peak.

    A component counts as resolved when a detected local peak lies within
    ``tolerance_s`` of its true delay and no other component claims the
    same peak — the operational meaning of "resolvable" in Fig. 1b.
    """
    start = channel.first_path.delay_s - 20e-9
    peak_indices = significant_peaks(
        waveform, threshold_fraction=0.2, min_separation_samples=4
    )
    peak_times = [start + idx * SAMPLING_PERIOD_S for idx in peak_indices]
    resolved = 0
    available = list(peak_times)
    for tap in channel.specular_taps():
        best, best_err = None, tolerance_s
        for peak_time in available:
            err = abs(peak_time - tap.delay_s)
            if err <= best_err:
                best, best_err = peak_time, err
        if best is not None:
            available.remove(best)
            resolved += 1
    return resolved


def _bandwidth_trial(
    rng: np.random.Generator, index: int, *, bandwidths: Sequence[float]
) -> tuple:
    """Render and score one bandwidth's Fig. 1b trace.

    The channel is geometric and the render noiseless, so the trial
    seeding contract goes unused — results are identical at any worker
    count or trial order.
    """
    bandwidth_hz = float(bandwidths[index])
    waveform, channel = received_waveform(bandwidth_hz)
    return (
        bandwidth_hz,
        len(channel.specular_taps()),
        resolved_component_count(waveform, channel),
        rise_time_s(waveform, SAMPLING_PERIOD_S),
    )


@standard_run()
def run(
    *,
    trials: int | None = None,
    seed: int = 0,
    workers: int = 1,
    batch_size=1,
    checkpoint=None,
    metrics: MetricsRegistry | None = None,
) -> ExperimentResult:
    """Compare resolvable components and edge steepness at both bandwidths.

    ``trials`` and ``batch_size`` are accepted for the standard run
    signature and ignored: the experiment always renders exactly the two
    Fig. 1b bandwidths, one (deterministic) trial each.
    """
    del trials, batch_size  # standard-signature parameters; unused
    result = ExperimentResult(
        experiment_id="Fig. 1",
        description="multipath resolvability: 900 MHz vs 50 MHz bandwidth",
    )

    report = run_trials(
        partial(_bandwidth_trial, bandwidths=BANDWIDTHS_HZ),
        len(BANDWIDTHS_HZ),
        seed=seed,
        workers=workers,
        metrics=metrics,
        checkpoint_dir=checkpoint,
        checkpoint_label="fig1-bandwidth",
    )
    by_bandwidth = {row[0]: row for row in report.values}
    _, n_components, wide_resolved, wide_rise = by_bandwidth[WIDEBAND_HZ]
    _, _, narrow_resolved, narrow_rise = by_bandwidth[NARROWBAND_HZ]

    table = Table(
        ["bandwidth", "true MPCs", "resolved MPCs", "10-90% rise time [ns]"],
        title="Fig. 1b reproduction",
    )
    table.add_row(["900 MHz", n_components, wide_resolved, wide_rise * 1e9])
    table.add_row(["50 MHz", n_components, narrow_resolved, narrow_rise * 1e9])
    result.add_table(table)

    result.compare("mpc_count", float(n_components), paper=5.0,
                   unit="paths (LOS + 4 first-order)")
    result.compare("resolved_900MHz", float(wide_resolved),
                   paper=float(n_components))
    result.compare("resolved_50MHz", float(narrow_resolved), paper=1.0)
    result.note(
        "paper expectation: every component distinct at 900 MHz, "
        "a single overlapping hump at 50 MHz"
    )
    return result
