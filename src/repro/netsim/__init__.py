"""Discrete-event network simulator with UWB signal superposition.

* :mod:`repro.netsim.engine` — a minimal, deterministic event queue.
* :mod:`repro.netsim.node` — positioned nodes owning a DW1000 radio.
* :mod:`repro.netsim.medium` — the wireless medium: per-link channel
  realisations, propagation delays, and delivery of (possibly
  overlapping) frames to receivers.
* :mod:`repro.netsim.trace` — structured event traces for debugging and
  for the energy/airtime accounting of the scalability benchmarks.
* :mod:`repro.netsim.swarm` — the city-scale swarm layer: N mobile
  responders, concurrent initiators, contention, round-robin polling
  windows, and a spatially sharded event loop whose results are
  byte-identical at any shard count.
"""

from repro.netsim.engine import EventQueue, Event
from repro.netsim.node import Node
from repro.netsim.medium import Medium, FrameTransmission
from repro.netsim.trace import TraceRecorder, TraceEvent

#: Swarm names re-exported lazily (PEP 562): the swarm layer sits on
#: top of `repro.localization` and `repro.protocol`, while
#: `repro.protocol.twr` imports `repro.netsim.medium` — an eager
#: import here would close that cycle and fail for whichever package
#: happens to load first.
_SWARM_EXPORTS = frozenset(
    {"MobilityTrace", "SwarmConfig", "SwarmEvent", "SwarmResult",
     "SwarmScenario"}
)


def __getattr__(name):
    if name in _SWARM_EXPORTS:
        from repro.netsim import swarm

        return getattr(swarm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "EventQueue",
    "Event",
    "Node",
    "Medium",
    "FrameTransmission",
    "MobilityTrace",
    "SwarmConfig",
    "SwarmEvent",
    "SwarmResult",
    "SwarmScenario",
    "TraceRecorder",
    "TraceEvent",
]
