"""Discrete-event network simulator with UWB signal superposition.

* :mod:`repro.netsim.engine` — a minimal, deterministic event queue.
* :mod:`repro.netsim.node` — positioned nodes owning a DW1000 radio.
* :mod:`repro.netsim.medium` — the wireless medium: per-link channel
  realisations, propagation delays, and delivery of (possibly
  overlapping) frames to receivers.
* :mod:`repro.netsim.trace` — structured event traces for debugging and
  for the energy/airtime accounting of the scalability benchmarks.
"""

from repro.netsim.engine import EventQueue, Event
from repro.netsim.node import Node
from repro.netsim.medium import Medium, FrameTransmission
from repro.netsim.trace import TraceRecorder, TraceEvent

__all__ = [
    "EventQueue",
    "Event",
    "Node",
    "Medium",
    "FrameTransmission",
    "TraceRecorder",
    "TraceEvent",
]
