"""Structured protocol traces: message counts, airtime, utilization.

The scalability claims of the paper's Sect. VIII are about *counting*:
messages, receive time, transmit time.  The trace recorder collects one
entry per radio operation so the benchmark can report message counts,
total airtime, and channel utilization for scheduled vs. concurrent
ranging without touching the protocol logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

VALID_KINDS = ("tx", "rx", "rx_listen")


@dataclass(frozen=True)
class TraceEvent:
    """One radio operation.

    ``kind`` is ``"tx"``, ``"rx"`` (successful frame reception), or
    ``"rx_listen"`` (receiver on without a frame, e.g. guard windows).
    """

    time_s: float
    node_id: int
    kind: str
    duration_s: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"kind must be one of {VALID_KINDS}, got {self.kind!r}")
        if self.duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {self.duration_s}")


class TraceRecorder:
    """Accumulates trace events and derives summary statistics."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(
        self,
        time_s: float,
        node_id: int,
        kind: str,
        duration_s: float,
        label: str = "",
    ) -> None:
        self._events.append(
            TraceEvent(
                time_s=time_s,
                node_id=node_id,
                kind=kind,
                duration_s=duration_s,
                label=label,
            )
        )

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def count(self, kind: str) -> int:
        """Number of events of a kind across all nodes."""
        return sum(1 for event in self._events if event.kind == kind)

    def count_for_node(self, node_id: int, kind: str) -> int:
        return sum(
            1
            for event in self._events
            if event.kind == kind and event.node_id == node_id
        )

    @property
    def message_count(self) -> int:
        """Total frames put on the air."""
        return self.count("tx")

    def airtime_s(self) -> float:
        """Total on-air time (sum of TX durations)."""
        return sum(e.duration_s for e in self._events if e.kind == "tx")

    def radio_on_time_s(self, node_id: int | None = None) -> float:
        """Total time radios were active (TX + RX + listening)."""
        return sum(
            e.duration_s
            for e in self._events
            if node_id is None or e.node_id == node_id
        )

    def span_s(self) -> float:
        """Wall-clock span from the first event start to the last end."""
        if not self._events:
            return 0.0
        start = min(e.time_s for e in self._events)
        end = max(e.time_s + e.duration_s for e in self._events)
        return end - start

    def channel_utilization(self) -> float:
        """Fraction of the span during which at least one frame was on
        the air.  Overlapping transmissions (concurrent responses) are
        merged, which is exactly why concurrent ranging wins here."""
        intervals = sorted(
            (e.time_s, e.time_s + e.duration_s)
            for e in self._events
            if e.kind == "tx"
        )
        if not intervals:
            return 0.0
        busy = 0.0
        current_start, current_end = intervals[0]
        for start, end in intervals[1:]:
            if start > current_end:
                busy += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        busy += current_end - current_start
        span = self.span_s()
        return busy / span if span > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """All headline numbers in one dictionary."""
        return {
            "messages": float(self.message_count),
            "receptions": float(self.count("rx")),
            "airtime_s": self.airtime_s(),
            "span_s": self.span_s(),
            "utilization": self.channel_utilization(),
        }
