"""Network nodes: a position, a radio, and an identity."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import Point
from repro.radio.dw1000 import DW1000Radio
from repro.radio.energy import RadioState
from repro.radio.frame import RadioConfig
from repro.radio.timebase import Clock


@dataclass
class Node:
    """A UWB node in the simulated network.

    Each node owns a DW1000 radio (with its own clock, registers, and
    energy meter) and a fixed 2-D position.
    """

    node_id: int
    position: Point
    radio: DW1000Radio

    @classmethod
    def at(
        cls,
        node_id: int,
        x: float,
        y: float,
        rng: np.random.Generator | None = None,
        config: RadioConfig | None = None,
    ) -> "Node":
        """Create a node at a position with a randomly drifting clock.

        Without an ``rng`` the clock is ideal (useful for unit tests);
        with one, the crystal gets a realistic ppm-scale offset.
        """
        clock = Clock.random(rng) if rng is not None else Clock()
        return cls(
            node_id=node_id,
            position=Point(x, y),
            radio=DW1000Radio(config=config, clock=clock),
        )

    def distance_to(self, other: "Node") -> float:
        """True geometric distance to another node [m]."""
        return self.position.distance_to(other.position)

    def account_tx(self, duration_s: float) -> None:
        """Charge a transmission to this node's energy meter."""
        self.radio.energy.account(RadioState.TX, duration_s)

    def account_rx(self, duration_s: float) -> None:
        """Charge a reception (or receive listening) to the meter."""
        self.radio.energy.account(RadioState.RX, duration_s)

    def account_idle(self, duration_s: float) -> None:
        self.radio.energy.account(RadioState.IDLE, duration_s)
