"""The wireless medium: per-link channels and frame delivery.

The medium owns the channel model.  For every (transmitter, receiver)
pair it draws a :class:`~repro.channel.cir.ChannelRealization` — either
from a stochastic indoor environment (Monte-Carlo experiments) or from a
geometric room model (deterministic figures).  Links are reciprocal
within one coherence interval: the INIT and RESP legs of a ranging
exchange see the same taps, as they do physically within a channel
coherence time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.channel.cir import ChannelRealization
from repro.channel.geometry import Room, image_source_taps
from repro.channel.stochastic import IndoorEnvironment
from repro.netsim.node import Node
from repro.radio.dw1000 import SignalArrival
from repro.signal.pulses import Pulse


@dataclass(frozen=True)
class FrameTransmission:
    """A frame on the air: who sent it, when, with which pulse shape.

    ``payload`` carries protocol data (e.g. embedded timestamps); the
    medium never interprets it.
    """

    tx_node_id: int
    tx_time_s: float
    pulse: Pulse
    payload: object = None
    airtime_s: float = 0.0


class Medium:
    """Connects nodes through a channel model.

    Parameters
    ----------
    environment:
        Stochastic channel generator used for links (ignored when a
        ``room`` is given).
    room:
        Optional geometric room; when set, deterministic image-source
        taps are used instead of the stochastic environment.
    rng:
        Random generator for channel draws and noise.
    channel_transform:
        Optional injection seam: a callable ``(a_id, b_id, channel) ->
        channel`` applied to every freshly drawn link realization before
        it is cached for the coherence interval.  ``None`` (default) is
        a zero-cost pass-through; :mod:`repro.faults` uses this seam for
        NLOS onset and link perturbations.
    """

    def __init__(
        self,
        environment: IndoorEnvironment | None = None,
        room: Room | None = None,
        rng: np.random.Generator | None = None,
        channel_transform=None,
    ) -> None:
        self.environment = environment or IndoorEnvironment.office()
        self.room = room
        self.rng = rng or np.random.default_rng()
        self.channel_transform = channel_transform
        self._nodes: Dict[int, Node] = {}
        self._links: Dict[Tuple[int, int], ChannelRealization] = {}

    # -- topology ----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    # -- channels ----------------------------------------------------------

    def _link_key(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def channel_between(self, a_id: int, b_id: int) -> ChannelRealization:
        """The channel realization of a link (reciprocal, cached for the
        current coherence interval; see :meth:`new_coherence_interval`)."""
        if a_id == b_id:
            raise ValueError(f"node {a_id} cannot have a channel to itself")
        key = self._link_key(a_id, b_id)
        if key not in self._links:
            self._links[key] = self._draw_channel(a_id, b_id)
        return self._links[key]

    def _draw_channel(self, a_id: int, b_id: int) -> ChannelRealization:
        node_a = self._nodes[a_id]
        node_b = self._nodes[b_id]
        if self.room is not None:
            taps = image_source_taps(
                self.room, node_a.position, node_b.position
            )
            channel = ChannelRealization(taps)
        else:
            distance = node_a.distance_to(node_b)
            channel = self.environment.realize(distance, self.rng)
        if self.channel_transform is not None:
            channel = self.channel_transform(a_id, b_id, channel)
        return channel

    def new_coherence_interval(self) -> None:
        """Forget cached channels: the next draw is a fresh realization.

        Call between Monte-Carlo trials; within one ranging round the
        channel stays coherent.
        """
        self._links.clear()

    # -- delivery ----------------------------------------------------------

    def arrival_at(
        self, transmission: FrameTransmission, rx_node_id: int
    ) -> SignalArrival:
        """The signal a receiver sees from one transmission."""
        if rx_node_id == transmission.tx_node_id:
            raise ValueError("a node does not receive its own transmission")
        channel = self.channel_between(transmission.tx_node_id, rx_node_id)
        return SignalArrival(
            channel=channel,
            pulse=transmission.pulse,
            tx_time_s=transmission.tx_time_s,
            source_id=transmission.tx_node_id,
        )

    def arrivals_at(
        self, transmissions: Iterable[FrameTransmission], rx_node_id: int
    ) -> List[SignalArrival]:
        """All arrivals of a set of (overlapping) transmissions at one
        receiver — the superposition a concurrent-ranging initiator
        captures in a single CIR."""
        return [self.arrival_at(tx, rx_node_id) for tx in transmissions]

    def first_arrival_time(
        self, transmission: FrameTransmission, rx_node_id: int
    ) -> float:
        """Global arrival time of the first path of a transmission."""
        return self.arrival_at(transmission, rx_node_id).first_path_arrival_s
