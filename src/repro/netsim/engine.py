"""A minimal deterministic discrete-event engine.

The protocol simulations are choreographies of a handful of events
(transmissions, receptions, turnarounds), but their *order* matters and
several can coincide — concurrent ranging exists precisely because many
RESP frames hit the initiator at (almost) the same instant.  The engine
orders events by (time, sequence number), so simultaneous events run in
scheduling order and every run is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled event.

    Ordering is by time, then by insertion sequence (stable for ties).
    The callback and payload do not participate in ordering.
    """

    time_s: float
    sequence: int
    callback: Callable[["EventQueue", Any], None] = field(compare=False)
    payload: Any = field(compare=False, default=None)
    label: str = field(compare=False, default="")


class EventQueue:
    """A deterministic event queue with simulated time."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now_s(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        time_s: float,
        callback: Callable[["EventQueue", Any], None],
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule a callback at an absolute simulated time.

        Scheduling in the past (before the current simulated time) is an
        error — it would make event order ambiguous.
        """
        if time_s < self._now:
            raise ValueError(
                f"cannot schedule at {time_s} before current time {self._now}"
            )
        event = Event(
            time_s=time_s,
            sequence=next(self._counter),
            callback=callback,
            payload=payload,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay_s: float,
        callback: Callable[["EventQueue", Any], None],
        payload: Any = None,
        label: str = "",
    ) -> Event:
        """Schedule a callback ``delay_s`` after the current time."""
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        return self.schedule(self._now + delay_s, callback, payload, label)

    def step(self) -> Event | None:
        """Execute the next event; returns it, or ``None`` when empty."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._now = event.time_s
        self._processed += 1
        event.callback(self, event.payload)
        return event

    def run(self, until_s: float | None = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains, ``until_s`` is passed, or
        ``max_events`` have executed.  Returns the number executed.

        When ``until_s`` is given, the clock always ends at
        ``max(now_s, until_s)`` — even if the queue drains early (or is
        empty to begin with), simulated time advances to the requested
        horizon, so consecutive ``run(until_s=...)`` windows tile time
        without gaps and post-run ``schedule_after`` calls are relative
        to the horizon, not to the last event.  Events scheduled exactly
        *at* ``until_s`` are executed.  The clock never moves backwards:
        ``until_s`` in the past is a no-op for the clock.
        """
        executed = 0
        while self._heap and executed < max_events:
            if until_s is not None and self._heap[0].time_s > until_s:
                break
            self.step()
            executed += 1
        if executed >= max_events and self._heap:
            raise RuntimeError(
                f"event budget of {max_events} exhausted with "
                f"{len(self._heap)} events pending — likely a scheduling loop"
            )
        if until_s is not None and until_s > self._now:
            self._now = until_s
        return executed
