"""City-scale swarm simulation (paper Sect. VIII, measured).

The paper argues the combined RPM x pulse-shaping scheme scales to
``N_max = N_RPM * N_PS`` responders (>1500 with ~100 shapes) but only
demonstrates 3-of-3; :mod:`repro.experiments.sect8_scalability` checks
the capacity claim in closed form.  This module *measures* it: a
discrete-event swarm of N mobile responders and multiple concurrent
initiator tags on a shared medium, whose per-round CIR synthesis runs
through the real protocol stack (:class:`~repro.protocol.concurrent.
ConcurrentRangingSession` with global scheme identities and anchor-slot
decoding), the batched classifier
(:func:`~repro.core.batch_id.classify_batch`), and the localization
layer (robust multilateration + constant-velocity tracking).

Structure per epoch (one scheduling beat of ``epoch_period_s``):

1. **Mobility** — every node advances its random-waypoint trace; each
   trace draws only from its own per-node stream
   (``SeedSequence((seed, stream, uid))``), so positions never depend
   on processing order.
2. **Scheduling** — ``n_concurrent`` initiators are active
   (round-robin over the tag population, the ``UWBNetwork`` shape);
   each in-range responder joins the *nearest* active initiator
   (ties to the lower initiator ID) — the join/ping/range membership
   flow of the swarmulator ``uwb_channel`` model, reduced to its
   deterministic essence.
3. **Sharded rounds** — space is divided into cells; each shard owns
   the cells hashing to it plus a one-``comm_range`` halo and runs the
   rounds of the initiators inside it.  Every round draws from its own
   ``(seed, stream, epoch, initiator)`` stream and touches a disjoint
   node set, so shard count and shard order cannot change any byte of
   any round; the cross-shard merge orders pending rounds by
   ``(epoch, initiator)`` before classification.  ``shards=1`` and
   ``shards=K`` are byte-identical by construction and pinned by
   ``tests/test_swarm.py``.
4. **Contention** — rounds of initiators with other active initiators
   inside ``interference_range_m`` receive impulsive interference
   bursts (the classic impulsive UWB interference model) through the
   :mod:`repro.faults` seam, seeded per ``(epoch, initiator)``.
5. **Classification + decode** — pending rounds' CIRs stack into
   :func:`classify_batch` chunks (or the serial classifier, for the
   differential harness), then each round finishes through the session
   and feeds identified (anchor position, distance) pairs into
   multilateration and the per-tag tracker.

Each responder owns a persistent global identity; slot and shape derive
from it modulo the scheme capacity.  Above capacity two *in-range*
members can share (slot, shape) — such decodes are counted
``ambiguous`` rather than identified, which is what makes the
identification curve bend past ``N_max``.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.geometry import Point
from repro.channel.stochastic import IndoorEnvironment
from repro.constants import RPM_MAX_OFFSET_S, SPEED_OF_LIGHT
from repro.core.batch_id import classify_batch
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.faults import FaultPlan, ImpulsiveInterference
from repro.localization import ConstantVelocityTracker, multilaterate_robust
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import (
    ConcurrentRangingSession,
    EmptyRoundError,
)
from repro.signal.templates import TemplateBank

__all__ = [
    "MobilityTrace",
    "SwarmConfig",
    "SwarmEvent",
    "SwarmResult",
    "SwarmScenario",
]

#: Seed-stream discriminators (the ``repro.runtime`` seed-spawning
#: discipline: every random stream keys off ``(seed, stream, ids...)``
#: so no draw ever depends on execution order or shard layout).
STREAM_CLOCK = 11
STREAM_MOBILITY = 13
STREAM_ROUND = 17
STREAM_CONTENTION = 19

#: Canonical intra-(epoch, initiator) event order for the merged stream.
_KIND_ORDER = {"idle": 0, "empty": 0, "round": 1, "fix": 2}


@dataclass(frozen=True)
class SwarmConfig:
    """Parameters of one swarm scenario.

    The defaults are the *city-scale* operating point: a 16-slot x
    96-shape scheme (capacity 1536 — the paper's ">1500 responders"
    claim), a communication range small enough that same-slot responders
    stay within half a slot of round-trip excess delay, and a
    12-responder polling window per round so per-round cost is bounded
    at any population size.
    """

    n_responders: int
    n_initiators: int = 4
    #: Initiators active per epoch (concurrent rounds on the medium).
    n_concurrent: int = 2
    #: Square arena side [m]; ``None`` derives it from the population
    #: so responder density stays near ``1 / spacing_m**2``.
    arena_m: Optional[float] = None
    spacing_m: float = 1.0
    #: Spatial cell size for the sharded event loop [m].
    cell_m: float = 5.0
    #: Responders within this of an active initiator can be polled [m].
    comm_range_m: float = 4.2
    #: Initiators within this of each other interfere [m].
    interference_range_m: float = 15.0
    #: Max responders polled per round (round-robin over members).
    window: int = 12
    n_slots: int = 16
    n_shapes: int = 96
    initiator_speed_mps: float = 1.2
    responder_speed_mps: float = 0.5
    epoch_period_s: float = 0.2
    upsample_factor: int = 4
    max_responses: int = 16
    min_peak_snr: float = 5.0
    #: CIRs per :func:`classify_batch` call.
    batch_size: int = 8
    #: Route classification through the serial classifier instead of
    #: :func:`classify_batch` (differential-test switch; results are
    #: byte-identical either way).
    serial_classifier: bool = False

    def __post_init__(self) -> None:
        if self.n_responders < 1:
            raise ValueError("need at least one responder")
        if self.n_initiators < 1:
            raise ValueError("need at least one initiator")
        if not 1 <= self.n_concurrent <= self.n_initiators:
            raise ValueError(
                f"n_concurrent must be in 1..{self.n_initiators}, got "
                f"{self.n_concurrent}"
            )
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.cell_m <= 0 or self.comm_range_m <= 0:
            raise ValueError("cell_m and comm_range_m must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.arena_m is not None and self.arena_m <= 0:
            raise ValueError("arena_m must be positive")

    @property
    def arena(self) -> float:
        """Arena side [m] (derived from the population when unset)."""
        if self.arena_m is not None:
            return float(self.arena_m)
        return max(9.0, math.sqrt(self.n_responders) * self.spacing_m)

    @property
    def capacity(self) -> int:
        return self.n_slots * self.n_shapes

    @property
    def slot_ambiguity_range_m(self) -> float:
        """Largest distance spread within one polled window that still
        decodes slots unambiguously (half a slot of round-trip delay)."""
        slot_s = RPM_MAX_OFFSET_S / self.n_slots
        return slot_s / 4.0 * SPEED_OF_LIGHT


class MobilityTrace:
    """Random-waypoint mobility from a private random stream."""

    def __init__(
        self,
        rng: np.random.Generator,
        arena_m: float,
        speed_mps: float,
    ) -> None:
        self._rng = rng
        self.arena_m = float(arena_m)
        self.speed_mps = float(speed_mps)
        self.position = self._draw_point()
        self._target = self._draw_point()

    def _draw_point(self) -> Point:
        return Point(
            float(self._rng.uniform(0.0, self.arena_m)),
            float(self._rng.uniform(0.0, self.arena_m)),
        )

    def step(self, dt_s: float) -> Point:
        """Advance toward the waypoint; arriving draws the next one."""
        if self.speed_mps <= 0.0:
            return self.position
        remaining = self.speed_mps * dt_s
        while remaining > 0.0:
            dx = self._target.x - self.position.x
            dy = self._target.y - self.position.y
            gap = math.hypot(dx, dy)
            if gap <= remaining:
                self.position = self._target
                remaining -= gap
                self._target = self._draw_point()
            else:
                frac = remaining / gap
                self.position = Point(
                    self.position.x + dx * frac, self.position.y + dy * frac
                )
                remaining = 0.0
        return self.position


@dataclass(frozen=True)
class SwarmEvent:
    """One entry of the deterministic swarm event stream.

    The stream is ordered by ``(epoch, initiator)`` regardless of shard
    count — it *is* the byte-identity contract of the sharded loop.
    ``data`` holds only ints and floats so ``repr`` is canonical.
    """

    epoch: int
    initiator: int
    kind: str
    data: tuple = ()


@dataclass(frozen=True)
class SwarmResult:
    """Aggregates of one swarm run.

    Everything except ``elapsed_s`` is a deterministic function of
    ``(config, seed, n_epochs)``; ``digest()`` hashes exactly that
    deterministic surface.
    """

    events: tuple
    rounds: int
    empty_rounds: int
    polled: int
    identified: int
    ambiguous: int
    errors_m: tuple
    fix_errors_m: tuple
    track_errors_m: tuple
    coverage: float
    n_epochs: int
    elapsed_s: float

    @property
    def id_rate(self) -> float:
        """Identified (unambiguously) / polled, over all rounds."""
        return self.identified / self.polled if self.polled else float("nan")

    @property
    def ambiguous_fraction(self) -> float:
        """Correct decodes lost to above-capacity (slot, shape) aliasing."""
        return self.ambiguous / self.polled if self.polled else 0.0

    @property
    def median_abs_error_m(self) -> float:
        if not self.errors_m:
            return float("nan")
        return float(np.median(np.abs(self.errors_m)))

    @property
    def median_fix_error_m(self) -> float:
        if not self.fix_errors_m:
            return float("nan")
        return float(np.median(self.fix_errors_m))

    @property
    def median_track_error_m(self) -> float:
        if not self.track_errors_m:
            return float("nan")
        return float(np.median(self.track_errors_m))

    @property
    def rounds_per_s(self) -> float:
        return self.rounds / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def digest(self) -> str:
        """SHA-256 over the deterministic surface (never ``elapsed_s``)."""
        hasher = hashlib.sha256()
        for event in self.events:
            hasher.update(repr(event).encode())
        hasher.update(
            repr(
                (
                    self.rounds,
                    self.empty_rounds,
                    self.polled,
                    self.identified,
                    self.ambiguous,
                    self.errors_m,
                    self.fix_errors_m,
                    self.track_errors_m,
                    self.coverage,
                    self.n_epochs,
                )
            ).encode()
        )
        return hasher.hexdigest()


@dataclass
class _PendingEntry:
    """One round paused at the classification boundary."""

    epoch: int
    initiator: int
    session: ConcurrentRangingSession
    pending: object
    polled: tuple
    members: tuple


class SwarmScenario:
    """N mobile responders + concurrent initiator tags, sharded by cell.

    Parameters
    ----------
    config:
        The :class:`SwarmConfig`.
    seed:
        Master entropy (int or tuple); every stream in the scenario
        derives from it through a stable ``(seed, stream, ids...)`` key.
    shards:
        Number of spatial shards the event loop partitions cells over.
        Any value produces byte-identical results; values above 1
        exercise the halo/merge machinery.
    """

    def __init__(self, config: SwarmConfig, seed=0, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.seed = seed
        self.shards = int(shards)
        self.environment = IndoorEnvironment.office()

        bank = (
            TemplateBank.paper_bank(config.n_shapes)
            if config.n_shapes <= 4
            else TemplateBank.spread(config.n_shapes)
        )
        self.scheme = CombinedScheme(
            SlotPlan.for_range(20.0, n_slots=config.n_slots), bank
        )
        # One detector config for every round: ``max_responses`` already
        # covers the largest window, so the session never has to widen
        # it per round and batched classification shares one plan.
        self._detector_config = SearchAndSubtractConfig(
            max_responses=max(config.max_responses, config.window),
            upsample_factor=config.upsample_factor,
            min_peak_snr=config.min_peak_snr,
        )

        arena = config.arena
        self._nodes: Dict[int, Node] = {}
        self._traces: Dict[int, MobilityTrace] = {}
        for uid in range(config.n_initiators + config.n_responders):
            is_initiator = uid < config.n_initiators
            trace = MobilityTrace(
                np.random.default_rng((*self._key(), STREAM_MOBILITY, uid)),
                arena,
                config.initiator_speed_mps
                if is_initiator
                else config.responder_speed_mps,
            )
            node = Node.at(
                uid,
                trace.position.x,
                trace.position.y,
                rng=np.random.default_rng(
                    (*self._key(), STREAM_CLOCK, uid)
                ),
            )
            self._nodes[uid] = node
            self._traces[uid] = trace

        self._round_robin: Dict[int, int] = {}
        self._trackers: Dict[int, ConstantVelocityTracker] = {}
        self._polled_ever: set = set()
        self._epoch = 0

    # -- identities ---------------------------------------------------------

    def _key(self) -> tuple:
        seed = self.seed
        return tuple(seed) if isinstance(seed, (tuple, list)) else (seed,)

    def _scheme_id(self, uid: int) -> int:
        """Persistent global scheme identity of a responder node."""
        return uid - self.config.n_initiators

    # -- spatial sharding ---------------------------------------------------

    def _cell_of(self, position: Point) -> Tuple[int, int]:
        cell = self.config.cell_m
        return (int(position.x // cell), int(position.y // cell))

    def _shard_of(self, cell: Tuple[int, int]) -> int:
        # Deterministic cell->shard map (independent of arena size and
        # shard count semantics: only *which* shard runs a round varies,
        # never the round itself).
        return (cell[0] * 73856093 + cell[1] * 19349663) % self.shards

    def _build_grid(self) -> Dict[Tuple[int, int], List[int]]:
        """Responder cell grid (members ascending per cell)."""
        grid: Dict[Tuple[int, int], List[int]] = {}
        for uid in sorted(self._nodes):
            if uid < self.config.n_initiators:
                continue
            cell = self._cell_of(self._nodes[uid].position)
            grid.setdefault(cell, []).append(uid)
        return grid

    def _shard_view(
        self,
        shard: int,
        grid: Dict[Tuple[int, int], List[int]],
        halo_cells: int,
    ) -> Dict[Tuple[int, int], tuple]:
        """The cells a shard may read: its own plus a halo ring.

        The view is the sharded loop's *only* window onto responder
        positions — an in-range query escaping it raises ``KeyError``
        in :meth:`_members_in_range`, so an insufficient halo is a loud
        failure, not a silent divergence.
        """
        view: Dict[Tuple[int, int], tuple] = {}
        for cell, members in grid.items():
            owned = self._shard_of(cell) == shard
            if owned:
                view[cell] = tuple(members)
                continue
            for dx in range(-halo_cells, halo_cells + 1):
                for dy in range(-halo_cells, halo_cells + 1):
                    neighbour = (cell[0] + dx, cell[1] + dy)
                    if self._shard_of(neighbour) == shard:
                        view[cell] = tuple(members)
                        break
                else:
                    continue
                break
        return view

    def _members_in_range(
        self,
        initiator_uid: int,
        view: Dict[Tuple[int, int], tuple],
        halo_cells: int,
    ) -> List[int]:
        """Responders within ``comm_range_m`` of an initiator, from the
        shard's view only (ascending uid)."""
        position = self._nodes[initiator_uid].position
        cell = self._cell_of(position)
        members: List[int] = []
        for dx in range(-halo_cells, halo_cells + 1):
            for dy in range(-halo_cells, halo_cells + 1):
                for uid in view.get((cell[0] + dx, cell[1] + dy), ()):
                    node = self._nodes[uid]
                    if (
                        position.distance_to(node.position)
                        <= self.config.comm_range_m
                    ):
                        members.append(uid)
        return sorted(members)

    # -- scheduling ---------------------------------------------------------

    def _active_initiators(self, epoch: int) -> List[int]:
        config = self.config
        active = {
            (epoch * config.n_concurrent + k) % config.n_initiators
            for k in range(config.n_concurrent)
        }
        return sorted(active)

    def _claim_members(
        self, active: Sequence[int], members_by_initiator: Dict[int, List[int]]
    ) -> Dict[int, List[int]]:
        """Resolve responders polled by several active initiators: the
        *nearest* initiator wins, ties to the lower initiator uid.

        Computed from global positions only — the claim map is the
        "cross-shard message" every shard agrees on before rounds run.
        """
        claims: Dict[int, int] = {}
        for initiator in active:
            for uid in members_by_initiator[initiator]:
                best = claims.get(uid)
                if best is None:
                    claims[uid] = initiator
                    continue
                node = self._nodes[uid]
                d_new = node.position.distance_to(
                    self._nodes[initiator].position
                )
                d_best = node.position.distance_to(
                    self._nodes[best].position
                )
                if d_new < d_best or (d_new == d_best and initiator < best):
                    claims[uid] = initiator
        claimed: Dict[int, List[int]] = {i: [] for i in active}
        for uid in sorted(claims):
            claimed[claims[uid]].append(uid)
        return claimed

    def _poll_window(self, initiator: int, members: Sequence[int]) -> tuple:
        """Round-robin admission: the next ``window`` members."""
        if not members:
            return ()
        pointer = self._round_robin.get(initiator, 0)
        take = min(self.config.window, len(members))
        start = pointer % len(members)
        polled = [
            members[(start + k) % len(members)] for k in range(take)
        ]
        self._round_robin[initiator] = start + take
        return tuple(sorted(polled))

    # -- rounds -------------------------------------------------------------

    def _contention_plan(
        self, epoch: int, initiator: int, active: Sequence[int]
    ) -> Optional[FaultPlan]:
        """Impulsive interference from other concurrent initiators."""
        position = self._nodes[initiator].position
        interferers = sum(
            1
            for other in active
            if other != initiator
            and position.distance_to(self._nodes[other].position)
            <= self.config.interference_range_m
        )
        if interferers == 0:
            return None
        return FaultPlan(
            [
                ImpulsiveInterference(
                    burst_probability=min(1.0, 0.35 * interferers),
                    amplitude_scale=0.6,
                    n_bursts=interferers,
                    burst_width_taps=3,
                )
            ],
            seed=(*self._key(), STREAM_CONTENTION, epoch, initiator),
        )

    def _begin_round(
        self,
        epoch: int,
        initiator: int,
        members: Sequence[int],
        active: Sequence[int],
        events: List[SwarmEvent],
    ) -> Optional[_PendingEntry]:
        polled = self._poll_window(initiator, members)
        if not polled:
            events.append(SwarmEvent(epoch, initiator, "idle"))
            return None
        self._polled_ever.update(polled)
        round_rng = np.random.default_rng(
            (*self._key(), STREAM_ROUND, epoch, initiator)
        )
        medium = Medium(environment=self.environment, rng=round_rng)
        init_node = self._nodes[initiator]
        responder_nodes = [self._nodes[uid] for uid in polled]
        medium.add_nodes([init_node] + responder_nodes)
        session = ConcurrentRangingSession(
            medium=medium,
            initiator=init_node,
            responders=responder_nodes,
            scheme=self.scheme,
            detector_config=self._detector_config,
            compensate_tx_quantization=True,
            rng=round_rng,
            faults=self._contention_plan(epoch, initiator, active),
            scheme_ids=[self._scheme_id(uid) for uid in polled],
            decode_with_anchor_slot=True,
        )
        try:
            pending = session.begin_round(round_index=epoch)
        except EmptyRoundError:
            events.append(
                SwarmEvent(epoch, initiator, "empty", (len(polled),))
            )
            return None
        return _PendingEntry(
            epoch=epoch,
            initiator=initiator,
            session=session,
            pending=pending,
            polled=polled,
            members=tuple(members),
        )

    def engine_config(self):
        """The :class:`~repro.serve.engine.EngineConfig` matching this
        scenario's own classifier — the bank, detector knobs, and
        sampling period its offline ``_classify`` uses, so a service
        built from it serves byte-identical rows."""
        from repro.constants import CIR_SAMPLING_PERIOD_S
        from repro.serve.engine import EngineConfig

        return EngineConfig(
            self.scheme.bank,
            CIR_SAMPLING_PERIOD_S,
            mode="classify",
            config=self._detector_config,
        )

    def serve_config(self, workers: int = 0, **overrides):
        """A ready :class:`~repro.serve.service.ServeConfig` for live
        ingest: this scenario's engine, its batch size, and no deadline
        shedding (every round must be served for digest parity)."""
        from repro.serve.service import ServeConfig

        options = {
            "engine": self.engine_config(),
            "workers": workers,
            "batch_size": self.config.batch_size,
            "default_deadline_s": None,
        }
        options.update(overrides)
        return ServeConfig(**options)

    def _classify_via_service(
        self, service, entries: List[_PendingEntry]
    ) -> List[list]:
        """Live ingest: stream the epoch's rounds through a client.

        ``service`` is a :class:`~repro.serve.client.RangingClient`
        (anything with a ``submit_many``) over a deployment built from
        :meth:`serve_config`.  Sessions are keyed per initiator so one
        initiator's rounds stay FIFO on one shard/worker; defense/fault
        context rides the request ``annotations`` end to end.  A round
        the service cannot serve raises — digest parity with the
        replayed-pool path requires every round's responses, so a
        degraded answer must not be silently substituted.
        """
        from repro.constants import CIR_SAMPLING_PERIOD_S
        from repro.serve.request import RangingRequest

        requests = []
        for entry in entries:
            period = float(entry.pending.sampling_period_s)
            if period != CIR_SAMPLING_PERIOD_S:
                raise ValueError(
                    f"round sampling period {period} does not match the "
                    f"served engine's {CIR_SAMPLING_PERIOD_S}"
                )
            requests.append(
                RangingRequest(
                    session_id=f"swarm-{entry.initiator}",
                    sequence=entry.epoch,
                    cir=entry.pending.cir,
                    noise_std=entry.pending.noise_std,
                    annotations={
                        "epoch": entry.epoch,
                        "initiator": entry.initiator,
                        "polled": len(entry.polled),
                        "members": len(entry.members),
                    },
                )
            )
        outcomes = service.submit_many(requests)
        rows: List[list] = []
        for entry, outcome in zip(entries, outcomes):
            if not outcome.ok:
                raise RuntimeError(
                    f"swarm round (epoch {entry.epoch}, initiator "
                    f"{entry.initiator}) failed through the service: "
                    f"{outcome.status}: {outcome.error}"
                )
            rows.append(list(outcome.responses))
        return rows

    def _classify(self, entries: List[_PendingEntry]) -> List[list]:
        """Classification for every pending round, in entry order."""
        if self.config.serial_classifier:
            return [
                entry.session.classifier.classify(
                    entry.pending.cir,
                    entry.pending.sampling_period_s,
                    noise_std=entry.pending.noise_std,
                )
                for entry in entries
            ]
        rows: List[list] = []
        step = self.config.batch_size
        for start in range(0, len(entries), step):
            chunk = entries[start : start + step]
            cirs = np.stack([entry.pending.cir for entry in chunk])
            rows.extend(
                classify_batch(
                    cirs,
                    self.scheme.bank,
                    chunk[0].pending.sampling_period_s,
                    config=self._detector_config,
                    noise_std=[entry.pending.noise_std for entry in chunk],
                )
            )
        return rows

    def _ambiguous_ids(self, members: Sequence[int]) -> set:
        """Scheme IDs (mod capacity) carried by >1 in-range member.

        Above capacity the initiator cannot tell which of two aliased
        members answered — a correct (slot, shape) decode is still an
        ambiguous identity.
        """
        capacity = self.config.capacity
        seen: Dict[int, int] = {}
        for uid in members:
            sid = self._scheme_id(uid) % capacity
            seen[sid] = seen.get(sid, 0) + 1
        return {sid for sid, count in seen.items() if count > 1}

    def _finish_round(
        self,
        entry: _PendingEntry,
        classified: list,
        events: List[SwarmEvent],
        stats: dict,
    ) -> None:
        result = entry.session.finish_round(entry.pending, classified)
        ambiguous_ids = self._ambiguous_ids(entry.members)
        capacity = self.config.capacity
        init_node = self._nodes[entry.initiator]

        identified = 0
        ambiguous = 0
        anchors: List[Point] = []
        distances: List[float] = []
        for outcome in result.outcomes:
            uid = entry.polled[outcome.responder_id]
            if not outcome.identified:
                continue
            if self._scheme_id(uid) % capacity in ambiguous_ids:
                ambiguous += 1
                continue
            identified += 1
            stats["errors_m"].append(float(outcome.error_m))
            # The responder's position rides in the RESP payload (the
            # swarmulator ping model); with its decoded identity and
            # measured distance it becomes a localization anchor.
            anchors.append(self._nodes[uid].position)
            distances.append(float(outcome.estimated_distance_m))

        stats["rounds"] += 1
        stats["polled"] += len(entry.polled)
        stats["identified"] += identified
        stats["ambiguous"] += ambiguous
        events.append(
            SwarmEvent(
                entry.epoch,
                entry.initiator,
                "round",
                (len(entry.polled), identified, ambiguous),
            )
        )

        if len(anchors) >= 3:
            fix = multilaterate_robust(anchors, distances)
            fix_error = fix.position.distance_to(init_node.position)
            stats["fix_errors_m"].append(float(fix_error))
            tracker = self._trackers.setdefault(
                entry.initiator, ConstantVelocityTracker()
            )
            state = tracker.update(
                fix.position, entry.epoch * self.config.epoch_period_s
            )
            track_error = state.position.distance_to(init_node.position)
            stats["track_errors_m"].append(float(track_error))
            events.append(
                SwarmEvent(
                    entry.epoch,
                    entry.initiator,
                    "fix",
                    (len(anchors), float(fix_error), float(track_error)),
                )
            )

    # -- the loop -----------------------------------------------------------

    def run(self, n_epochs: int, service=None) -> SwarmResult:
        """Run ``n_epochs`` scheduling beats and aggregate the result.

        With ``service`` (a :class:`~repro.serve.client.RangingClient`
        over a deployment built from :meth:`serve_config`), each
        epoch's rounds are classified **live through the serving
        stack** instead of by the in-simulator batched classifier; the
        result — events, stats, and :meth:`SwarmResult.digest` — is
        byte-identical to the replayed-pool path, which
        ``tests/test_serve_mp.py`` pins.
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        config = self.config
        halo_cells = max(1, math.ceil(config.comm_range_m / config.cell_m))
        events: List[SwarmEvent] = []
        stats = {
            "rounds": 0,
            "polled": 0,
            "identified": 0,
            "ambiguous": 0,
            "errors_m": [],
            "fix_errors_m": [],
            "track_errors_m": [],
        }
        empty_rounds = 0
        started = time.perf_counter()

        for _ in range(n_epochs):
            epoch = self._epoch
            self._epoch += 1
            # 1. Mobility: every node advances on its private stream.
            for uid in sorted(self._nodes):
                position = self._traces[uid].step(config.epoch_period_s)
                self._nodes[uid].position = position

            # 2. Scheduling + global claim resolution.
            active = self._active_initiators(epoch)
            grid = self._build_grid()
            full_view = {cell: tuple(m) for cell, m in grid.items()}
            members_global = {
                initiator: self._members_in_range(
                    initiator, full_view, halo_cells
                )
                for initiator in active
            }
            claimed = self._claim_members(active, members_global)

            # 3. Sharded rounds: shard k runs the initiators whose cell
            #    hashes to it, reading positions only through its view.
            epoch_events: List[SwarmEvent] = []
            entries: List[_PendingEntry] = []
            for shard in range(self.shards):
                view = self._shard_view(shard, grid, halo_cells)
                for initiator in active:
                    cell = self._cell_of(self._nodes[initiator].position)
                    if self._shard_of(cell) != shard:
                        continue
                    mine = set(claimed[initiator])
                    members = [
                        uid
                        for uid in self._members_in_range(
                            initiator, view, halo_cells
                        )
                        if uid in mine
                    ]
                    entry = self._begin_round(
                        epoch, initiator, members, active, epoch_events
                    )
                    if entry is not None:
                        entries.append(entry)

            # 4. Deterministic cross-shard merge: order by initiator,
            #    then classify and finish.
            entries.sort(key=lambda e: e.initiator)
            if service is not None:
                rows = self._classify_via_service(service, entries)
            else:
                rows = self._classify(entries)
            for entry, classified in zip(entries, rows):
                self._finish_round(entry, classified, epoch_events, stats)
            empty_rounds += sum(
                1 for event in epoch_events if event.kind == "empty"
            )
            epoch_events.sort(
                key=lambda e: (e.initiator, _KIND_ORDER[e.kind])
            )
            events.extend(epoch_events)

        elapsed = time.perf_counter() - started
        return SwarmResult(
            events=tuple(events),
            rounds=stats["rounds"],
            empty_rounds=empty_rounds,
            polled=stats["polled"],
            identified=stats["identified"],
            ambiguous=stats["ambiguous"],
            errors_m=tuple(stats["errors_m"]),
            fix_errors_m=tuple(stats["fix_errors_m"]),
            track_errors_m=tuple(stats["track_errors_m"]),
            coverage=len(self._polled_ever) / config.n_responders,
            n_epochs=n_epochs,
            elapsed_s=elapsed,
        )
