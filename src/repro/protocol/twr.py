"""Single-sided two-way ranging (paper Fig. 3, Eq. 2).

The exchange is simulated at timestamp level: the radios' ToA jitter,
timestamp quantisation (15.65 ps), delayed-TX quantisation (~8 ns), and
clock drift all enter the timestamps exactly as they would on hardware,
and the distance comes out of Eq. 2 with carrier-frequency-offset drift
compensation (the standard DW1000 technique; without it, a 290 us reply
delay and a ppm of crystal offset would add tens of centimetres).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DELTA_RESP_S
from repro.core.ranging import twr_distance, twr_distance_compensated
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.messages import RespMessage
from repro.radio.timebase import quantize_timestamp_s

#: Residual error of the CFO-based drift estimate [ppm].  DW1000 carrier
#: integrator readings are good to a few hundredths of a ppm.
DEFAULT_CFO_ERROR_PPM = 0.05


@dataclass(frozen=True)
class TwrOutcome:
    """Result of one SS-TWR exchange."""

    distance_m: float
    uncompensated_distance_m: float
    true_distance_m: float
    resp_message: RespMessage
    t_tx_init_local_s: float
    t_rx_init_local_s: float

    @property
    def error_m(self) -> float:
        return self.distance_m - self.true_distance_m


class SsTwr:
    """One initiator/responder SS-TWR ranging engine."""

    def __init__(
        self,
        medium: Medium,
        initiator: Node,
        responder: Node,
        reply_delay_s: float = DELTA_RESP_S,
        cfo_error_ppm: float = DEFAULT_CFO_ERROR_PPM,
    ) -> None:
        if initiator.node_id == responder.node_id:
            raise ValueError("initiator and responder must be distinct nodes")
        self.medium = medium
        self.initiator = initiator
        self.responder = responder
        self.reply_delay_s = float(reply_delay_s)
        self.cfo_error_ppm = float(cfo_error_ppm)

    def run(
        self,
        rng: np.random.Generator,
        start_time_s: float = 0.0,
    ) -> TwrOutcome:
        """Execute one INIT/RESP exchange and estimate the distance.

        The channel is drawn from the medium (reciprocal for both legs)
        and refreshed afterwards so consecutive calls are independent
        trials.
        """
        init, resp = self.initiator, self.responder
        channel = self.medium.channel_between(init.node_id, resp.node_id)
        tof = channel.first_path.delay_s

        # INIT leg: the initiator knows its own TX RMARKER exactly.
        t_tx_init_global = start_time_s
        t_tx_init_local = quantize_timestamp_s(
            init.radio.clock.local_from_global(t_tx_init_global)
        )
        t_rx_resp_local = resp.radio.timestamp_arrival(
            t_tx_init_global + tof, rng, pulse_register=init.radio.pulse_register
        )

        # Reply: scheduled on the responder's clock, floored to the
        # delayed-TX grid; the responder reads back the floored value, so
        # the embedded t_tx is exact.
        t_tx_resp_local = resp.radio.schedule_delayed_tx(
            t_rx_resp_local + self.reply_delay_s
        )
        t_tx_resp_global = resp.radio.clock.global_from_local(t_tx_resp_local)

        # RESP leg.
        t_rx_init_local = init.radio.timestamp_arrival(
            t_tx_resp_global + tof, rng, pulse_register=resp.radio.pulse_register
        )

        message = RespMessage(
            responder_id=resp.node_id,
            t_rx_local_s=t_rx_resp_local,
            t_tx_local_s=t_tx_resp_local,
        )

        true_drift_ppm = resp.radio.clock.relative_drift_ppm(init.radio.clock)
        estimated_drift_ppm = true_drift_ppm + float(
            rng.normal(0.0, self.cfo_error_ppm)
        )
        distance = twr_distance_compensated(
            t_tx_init_local,
            t_rx_init_local,
            message.t_rx_local_s,
            message.t_tx_local_s,
            relative_drift_ppm=estimated_drift_ppm,
        )
        uncompensated = twr_distance(
            t_tx_init_local,
            t_rx_init_local,
            message.t_rx_local_s,
            message.t_tx_local_s,
        )

        self.medium.new_coherence_interval()
        return TwrOutcome(
            distance_m=distance,
            uncompensated_distance_m=uncompensated,
            true_distance_m=init.distance_to(resp),
            resp_message=message,
            t_tx_init_local_s=t_tx_init_local,
            t_rx_init_local_s=t_rx_init_local,
        )

    def run_many(
        self,
        trials: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Distance estimates from ``trials`` independent exchanges."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        return np.array(
            [self.run(rng, start_time_s=0.0).distance_m for _ in range(trials)]
        )


@dataclass(frozen=True)
class DsTwrOutcome:
    """Result of one DS-TWR (three-message) exchange."""

    distance_m: float
    true_distance_m: float

    @property
    def error_m(self) -> float:
        return self.distance_m - self.true_distance_m


class DsTwr:
    """Double-sided two-way ranging: INIT -> RESP -> FINAL.

    Three messages instead of two buy first-order immunity to clock
    drift without any CFO estimate — the conventional alternative whose
    per-link message cost motivates concurrent ranging in the first
    place (Sect. I/III).
    """

    def __init__(
        self,
        medium: Medium,
        initiator: Node,
        responder: Node,
        reply_delay_s: float = DELTA_RESP_S,
    ) -> None:
        if initiator.node_id == responder.node_id:
            raise ValueError("initiator and responder must be distinct nodes")
        self.medium = medium
        self.initiator = initiator
        self.responder = responder
        self.reply_delay_s = float(reply_delay_s)

    def run(
        self,
        rng: np.random.Generator,
        start_time_s: float = 0.0,
    ) -> DsTwrOutcome:
        """Execute one three-message exchange and estimate the distance."""
        from repro.core.ranging import ds_twr_distance

        init, resp = self.initiator, self.responder
        channel = self.medium.channel_between(init.node_id, resp.node_id)
        tof = channel.first_path.delay_s

        # Leg 1: INIT.
        t1_tx_global = start_time_s
        t1_tx_local = quantize_timestamp_s(
            init.radio.clock.local_from_global(t1_tx_global)
        )
        t1_rx_local = resp.radio.timestamp_arrival(t1_tx_global + tof, rng)

        # Leg 2: RESP after the reply delay (floored to the TX grid).
        t2_tx_local = resp.radio.schedule_delayed_tx(
            t1_rx_local + self.reply_delay_s
        )
        t2_tx_global = resp.radio.clock.global_from_local(t2_tx_local)
        t2_rx_local = init.radio.timestamp_arrival(t2_tx_global + tof, rng)

        # Leg 3: FINAL from the initiator.
        t3_tx_local = init.radio.schedule_delayed_tx(
            t2_rx_local + self.reply_delay_s
        )
        t3_tx_global = init.radio.clock.global_from_local(t3_tx_local)
        t3_rx_local = resp.radio.timestamp_arrival(t3_tx_global + tof, rng)

        distance = ds_twr_distance(
            t_round1_s=t2_rx_local - t1_tx_local,
            t_reply1_s=t2_tx_local - t1_rx_local,
            t_round2_s=t3_rx_local - t2_tx_local,
            t_reply2_s=t3_tx_local - t2_rx_local,
        )
        self.medium.new_coherence_interval()
        return DsTwrOutcome(
            distance_m=distance,
            true_distance_m=init.distance_to(resp),
        )

    def run_many(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Distance estimates from ``trials`` independent exchanges."""
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        return np.array([self.run(rng).distance_m for _ in range(trials)])
