"""Ranging protocols: SS-TWR, scheduled ranging, and concurrent ranging.

* :mod:`repro.protocol.messages` — INIT/RESP message definitions with
  realistic on-air sizes.
* :mod:`repro.protocol.twr` — single-sided two-way ranging (Fig. 3 left)
  with clock drift, timestamp quantisation, and drift compensation.
* :mod:`repro.protocol.concurrent` — the concurrent ranging round
  (Fig. 3 right): broadcast INIT, simultaneous RESP, CIR capture,
  detection, identification, and distance decoding.
* :mod:`repro.protocol.scheduling` — message/energy/airtime accounting
  for scheduled vs. concurrent ranging (Sect. VIII scalability).
* :mod:`repro.protocol.defense` — defenses against distance-manipulation
  attacks: secret time-hopping RPM verification and CIR-feature anomaly
  detection.
"""

from repro.protocol.messages import InitMessage, RespMessage, INIT_PAYLOAD_BYTES, RESP_PAYLOAD_BYTES
from repro.protocol.twr import SsTwr, TwrOutcome, DsTwr, DsTwrOutcome
from repro.protocol.concurrent import (
    ConcurrentRangingSession,
    ConcurrentRoundResult,
    EmptyRoundError,
    PendingRound,
    ResponderOutcome,
)
from repro.protocol.campaign import (
    CampaignResult,
    RangingCampaign,
    ResiliencePolicy,
)
from repro.protocol.defense import (
    AnomalyDetectorConfig,
    DefenseFlag,
    DefensePlan,
    DefenseReport,
    TimeHoppingConfig,
    screen_round,
)
from repro.protocol.scheduling import (
    RoundCost,
    scheduled_round_cost,
    concurrent_round_cost,
    network_sweep,
)

__all__ = [
    "InitMessage",
    "RespMessage",
    "INIT_PAYLOAD_BYTES",
    "RESP_PAYLOAD_BYTES",
    "SsTwr",
    "TwrOutcome",
    "DsTwr",
    "DsTwrOutcome",
    "ConcurrentRangingSession",
    "ConcurrentRoundResult",
    "EmptyRoundError",
    "PendingRound",
    "ResponderOutcome",
    "RangingCampaign",
    "CampaignResult",
    "ResiliencePolicy",
    "AnomalyDetectorConfig",
    "DefenseFlag",
    "DefensePlan",
    "DefenseReport",
    "TimeHoppingConfig",
    "screen_round",
    "RoundCost",
    "scheduled_round_cost",
    "concurrent_round_cost",
    "network_sweep",
]
