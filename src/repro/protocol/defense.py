"""Defenses against UWB distance-manipulation attacks.

Two complementary mechanisms, both living entirely on the initiator
side of the concurrent ranging round:

* **Random time-hopping RPM** (:class:`TimeHoppingConfig`) — every
  responder adds a secret per-(round, responder) jitter to its RPM
  reply slot, derived from a shared secret seed that an attacker does
  not hold (the random-reply-time defense of arXiv 2406.06252, mapped
  onto the paper's response position modulation).  The initiator
  re-derives each expected hop and verifies that every decoded
  response's arrival time is consistent with it: a legitimate reply
  arrives exactly ``2 x time-of-flight`` after its expected zero-range
  instant, so the verification value must land in a narrow physical
  window ``[-early_tolerance, 2 * max_range / c + late_tolerance]``.
  An early reply that cannot include the hop (it is secret) or a ghost
  peak injected ahead of the true leading edge lands outside it.

* **CIR-feature anomaly detection** (:class:`AnomalyDetectorConfig`) —
  flags responses whose decoded identity duplicates another response
  (a forged pulse necessarily duplicates some victim's slot/shape),
  whose template-score margin collapses, or whose tail-to-peak energy
  profile is inconsistent with a physical channel (the CIR-feature
  checks of arXiv 2405.18255, computed on features the pipeline
  already extracts).

:func:`screen_round` applies both to a decoded
:class:`~repro.core.ranging.RangingResult`, removing rejected
responses — a rejected responder therefore reads as a *miss* and flows
into the existing :class:`~repro.protocol.campaign.ResiliencePolicy`
quarantine machinery — and returning a :class:`DefenseReport` with the
per-response flags.  All configuration is validated eagerly at
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.core.ranging import RangingResult

__all__ = [
    "AnomalyDetectorConfig",
    "DefenseFlag",
    "DefensePlan",
    "DefenseReport",
    "TimeHoppingConfig",
    "screen_responses",
    "screen_round",
]

#: Relative amplitude below which a duplicate-identity response is
#: treated as a misread multipath echo rather than a credible attack
#: pulse and skipped by time-hopping verification (see
#: ``screen_round``).
WEAK_DUPLICATE_RATIO = 0.6


@dataclass(frozen=True)
class TimeHoppingConfig:
    """Secret per-round reply-slot jitter plus its verification window.

    Parameters
    ----------
    secret_seed:
        Shared secret between initiator and legitimate responders (an
        int or a tuple of ints).  The hop for ``(round, responder)`` is
        drawn from a stream seeded by ``(secret, round, responder)``
        only — never from the simulation's own generators — so both
        sides derive identical hops statelessly and an attacker without
        the secret cannot predict them.
    hop_range_s:
        Hops are uniform in ``[0, hop_range_s)``.  Must stay well below
        the RPM slot duration so hopped replies cannot alias into the
        next slot.  ``0`` disables hopping but keeps window
        verification active.
    early_tolerance_s:
        Slack below the zero-range arrival instant.  Must cover the
        ~8 ns delayed-TX quantisation floor (the programmed reply time
        is floored to the hardware grid, so legitimate replies arrive
        up to one grid step *early*) plus receive timestamp jitter.
    late_tolerance_s:
        Slack above the maximum-range arrival instant.
    max_range_m:
        Largest legitimate operating range; replies later than
        ``2 * max_range_m / c`` past their expected instant are flagged.
    """

    secret_seed: object = 0
    hop_range_s: float = 60e-9
    early_tolerance_s: float = 10e-9
    late_tolerance_s: float = 10e-9
    max_range_m: float = 30.0

    def __post_init__(self) -> None:
        for name in ("hop_range_s", "early_tolerance_s", "late_tolerance_s"):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0.0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if not self.max_range_m > 0.0:
            raise ValueError(
                f"max_range_m must be positive, got {self.max_range_m}"
            )
        try:
            np.random.SeedSequence(self._entropy(0, 0))
        except (TypeError, ValueError) as error:
            raise ValueError(
                "secret_seed must be an int or a sequence of ints, got "
                f"{self.secret_seed!r}: {error}"
            ) from error

    def _entropy(self, round_index: int, responder_id: int) -> tuple:
        secret = self.secret_seed
        if isinstance(secret, (int, np.integer)):
            base: tuple = (int(secret),)
        else:
            base = tuple(int(part) for part in secret)
        return base + (int(round_index), int(responder_id))

    def hop_offset_s(self, round_index: int, responder_id: int) -> float:
        """The secret hop for one (round, responder) pair."""
        if self.hop_range_s <= 0.0:
            return 0.0
        rng = np.random.default_rng(
            np.random.SeedSequence(self._entropy(round_index, responder_id))
        )
        return float(rng.uniform(0.0, self.hop_range_s))

    @property
    def window_s(self) -> Tuple[float, float]:
        """Accepted verification-value interval for a legitimate reply."""
        return (
            -self.early_tolerance_s,
            2.0 * self.max_range_m / SPEED_OF_LIGHT + self.late_tolerance_s,
        )


@dataclass(frozen=True)
class AnomalyDetectorConfig:
    """CIR-feature checks on decoded responses.

    Parameters
    ----------
    flag_duplicate_ids:
        Flag decoded identities that appear on more than one response.
        A forged pulse necessarily collides with its victim's
        (slot, shape) pair, so spoofing shows up as a duplicate; all
        colliding readings are rejected (the initiator cannot tell
        forged from genuine within one round).
    dup_min_amplitude_ratio:
        A duplicate group only fires when at least two of its members
        have an estimated amplitude of at least this fraction of the
        group's strongest.  An attack pulse is injected near full
        strength (it must win first-path detection), while a benign
        duplicate — a multipath echo decoding as its own response — is
        much weaker than its direct path; requiring two *strong* copies
        keeps the false-positive rate on clean rounds low.  ``0``
        disables the strength requirement.
    duplicates_need_extra:
        Additionally require the round to have decoded *more* responses
        than there are responders before the duplicate check fires.
    min_confidence:
        Flag responses whose template-score margin (the winning /
        runner-up score ratio, always >= 1) falls below this.  The
        default ``1.0`` disables the check.
    max_tail_peak_ratio:
        Flag responses whose tail-to-peak energy ratio exceeds this
        (``None`` disables).  Reciprocity tampering inflates the
        diffuse tail relative to the peak; physical channels decay.
    tail_check_peak_only:
        Evaluate the energy-profile check only on the response nearest
        the CIR's global peak — where tampering concentrates — instead
        of every response; weak multipath rows otherwise dominate the
        ratio with their neighbours' energy.
    tail_start_taps / tail_width_taps / peak_halfwidth_taps:
        Geometry of the energy-profile windows around each response
        peak, in CIR taps.
    """

    flag_duplicate_ids: bool = True
    dup_min_amplitude_ratio: float = 0.5
    duplicates_need_extra: bool = False
    min_confidence: float = 1.0
    max_tail_peak_ratio: Optional[float] = None
    tail_check_peak_only: bool = True
    tail_start_taps: int = 4
    tail_width_taps: int = 32
    peak_halfwidth_taps: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.dup_min_amplitude_ratio <= 1.0:
            raise ValueError(
                "dup_min_amplitude_ratio must be in [0, 1], got "
                f"{self.dup_min_amplitude_ratio}"
            )
        if not self.min_confidence >= 1.0:
            raise ValueError(
                "min_confidence must be >= 1 (score margins are), got "
                f"{self.min_confidence}"
            )
        if self.max_tail_peak_ratio is not None and not (
            self.max_tail_peak_ratio > 0.0
        ):
            raise ValueError(
                "max_tail_peak_ratio must be positive or None, got "
                f"{self.max_tail_peak_ratio}"
            )
        for name in ("tail_start_taps", "tail_width_taps"):
            if int(getattr(self, name)) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if int(self.peak_halfwidth_taps) < 0:
            raise ValueError(
                "peak_halfwidth_taps must be >= 0, got "
                f"{self.peak_halfwidth_taps}"
            )

    def tail_peak_ratio(
        self, samples: np.ndarray, peak_index: int
    ) -> float:
        """Tail energy over peak energy around one response position."""
        magnitude_sq = np.abs(samples) ** 2
        n = len(magnitude_sq)
        peak_index = int(np.clip(peak_index, 0, max(n - 1, 0)))
        halfwidth = int(self.peak_halfwidth_taps)
        peak_lo = max(0, peak_index - halfwidth)
        peak_hi = min(n, peak_index + halfwidth + 1)
        peak_energy = float(np.sum(magnitude_sq[peak_lo:peak_hi]))
        tail_lo = min(n, peak_index + int(self.tail_start_taps))
        tail_hi = min(n, tail_lo + int(self.tail_width_taps))
        tail_energy = float(np.sum(magnitude_sq[tail_lo:tail_hi]))
        if peak_energy <= 0.0:
            return float("inf") if tail_energy > 0.0 else 0.0
        return tail_energy / peak_energy


def _response_amplitude(response) -> float:
    """Estimated amplitude of a decoded response (0 when unavailable).

    Ranging results hold either bare
    :class:`~repro.core.detection.DetectedResponse` objects or
    :class:`~repro.core.pulse_id.ClassifiedResponse` wrappers around
    them; both expose the search-and-subtract amplitude estimate.
    """
    amplitude = getattr(response, "amplitude", None)
    if amplitude is None:
        amplitude = getattr(
            getattr(response, "response", None), "amplitude", None
        )
    # The search-and-subtract amplitude estimate may be complex.
    return float(abs(amplitude)) if amplitude is not None else 0.0


@dataclass(frozen=True)
class DefenseFlag:
    """One anomaly raised by the defense screen.

    ``responder_id`` is the decoded identity the flag is attributed to
    (``None`` for round-level flags); ``value`` is the offending
    measurement (verification value in seconds, score margin, or energy
    ratio, depending on ``reason``).
    """

    responder_id: Optional[int]
    reason: str
    value: float


@dataclass(frozen=True)
class DefenseReport:
    """What the defense screen did to one round."""

    #: All anomalies raised, in detection order.
    flags: Tuple[DefenseFlag, ...] = ()
    #: Responses that went through time-hopping verification.
    checked: int = 0
    #: Decoded identities whose responses were rejected (sorted).
    rejected_ids: Tuple[int, ...] = ()
    #: Responses removed from the ranging result.
    rejected_responses: int = 0

    @property
    def triggered(self) -> bool:
        return len(self.flags) > 0


@dataclass(frozen=True)
class DefensePlan:
    """The initiator's active defenses (either part may be ``None``)."""

    time_hopping: Optional[TimeHoppingConfig] = None
    anomaly: Optional[AnomalyDetectorConfig] = None

    def __post_init__(self) -> None:
        if self.time_hopping is not None and not isinstance(
            self.time_hopping, TimeHoppingConfig
        ):
            raise TypeError(
                "time_hopping must be a TimeHoppingConfig or None, got "
                f"{type(self.time_hopping).__name__}"
            )
        if self.anomaly is not None and not isinstance(
            self.anomaly, AnomalyDetectorConfig
        ):
            raise TypeError(
                "anomaly must be an AnomalyDetectorConfig or None, got "
                f"{type(self.anomaly).__name__}"
            )

    def hop_offset_s(self, round_index: int, responder_id: int) -> float:
        """Secret hop for a responder this round (0 without hopping)."""
        if self.time_hopping is None:
            return 0.0
        return self.time_hopping.hop_offset_s(round_index, responder_id)


def screen_responses(
    plan: DefensePlan,
    cir: np.ndarray,
    responses,
) -> List[DefenseFlag]:
    """The session-free subset of the defense screen, for the serve layer.

    The streaming service sees bare CIRs and decoded responses — no
    capture timestamps, no RPM assignment, no responder identities — so
    only the anomaly checks that need nothing but the CIR apply: the
    template-score-margin (``min_confidence``) and tail-to-peak energy
    (``max_tail_peak_ratio``) checks.  Returns the flags raised;
    deciding what to do with them is the caller's business (the service
    *annotates* outcomes rather than mutating them, preserving
    streaming == offline equality).
    """
    anomaly = plan.anomaly
    flags: List[DefenseFlag] = []
    if anomaly is None or not len(responses):
        return flags
    if anomaly.min_confidence > 1.0:
        for response in responses:
            confidence = getattr(response, "confidence", None)
            if (
                confidence is not None
                and confidence < anomaly.min_confidence
            ):
                flags.append(
                    DefenseFlag(
                        responder_id=None,
                        reason="low_confidence",
                        value=float(confidence),
                    )
                )
    if anomaly.max_tail_peak_ratio is not None:
        samples = np.asarray(cir)

        def _index_of(response) -> float:
            index = getattr(response, "index", None)
            if index is None:
                index = getattr(
                    getattr(response, "response", None), "index", 0.0
                )
            return float(index)

        positions = range(len(responses))
        if anomaly.tail_check_peak_only:
            global_peak = int(np.argmax(np.abs(samples)))
            positions = [
                min(
                    range(len(responses)),
                    key=lambda p: abs(
                        _index_of(responses[p]) - global_peak
                    ),
                )
            ]
        for position in positions:
            ratio = anomaly.tail_peak_ratio(
                samples, int(round(_index_of(responses[position])))
            )
            if ratio > anomaly.max_tail_peak_ratio:
                flags.append(
                    DefenseFlag(
                        responder_id=None,
                        reason="tail_energy",
                        value=ratio,
                    )
                )
    return flags


def screen_round(
    plan: DefensePlan,
    *,
    ranging: RangingResult,
    capture,
    t_tx_init_local_s: float,
    reply_delay_s: float,
    assignment_fn: Callable,
    round_index: int,
    expected_responders: int,
) -> Tuple[RangingResult, DefenseReport]:
    """Verify one decoded round against the active defenses.

    For every decoded response the arrival instant (initiator clock) is
    reconstructed from the capture timestamp and the response's CIR
    position; subtracting the INIT transmit time, the nominal reply
    delay, the RPM slot delay of the *decoded* identity, and that
    identity's secret hop leaves the verification value ``v`` — for a
    legitimate reply exactly the two-way time of flight, which must lie
    in :attr:`TimeHoppingConfig.window_s`.  Anomaly checks then flag
    duplicate identities, collapsed score margins, and non-physical
    energy profiles.  Rejected responses are removed from the returned
    :class:`~repro.core.ranging.RangingResult`; callers see the
    affected responders as misses.
    """
    responses = ranging.responses
    ids = ranging.responder_ids
    flags: List[DefenseFlag] = []
    reject: set = set()
    checked = 0

    hopping = plan.time_hopping
    if (
        hopping is not None
        and hopping.hop_range_s > 0.0
        and len(responses)
        and ids[0] is not None
    ):
        # De-hop the decoded distances: every response's CIR offset to
        # the anchor carries (hop_i - hop_anchor), which the initiator
        # — knowing the secret — removes before using the distances.
        anchor_hop_s = hopping.hop_offset_s(round_index, ids[0])
        corrected = tuple(
            distance
            if rid is None
            else distance
            - (hopping.hop_offset_s(round_index, rid) - anchor_hop_s)
            * SPEED_OF_LIGHT
            / 2.0
            for rid, distance in zip(ids, ranging.distances_m)
        )
        ranging = RangingResult(
            d_twr_m=ranging.d_twr_m,
            responses=responses,
            distances_m=corrected,
            responder_ids=ids,
        )

    amplitudes = [_response_amplitude(response) for response in responses]
    id_positions: Dict[int, List[int]] = {}
    for position, rid in enumerate(ids):
        if rid is not None:
            id_positions.setdefault(rid, []).append(position)

    def _weak_duplicate(position: int) -> bool:
        """A weak copy of an identity that also appears on a stronger
        response — a misread multipath echo, not a credible attack
        pulse (an attacker's pulse must be strong to claim an identity
        or win first-path detection).  The duplicate check governs
        these groups; verifying their hops against the wrong identity
        would only raise false alarms."""
        rid = ids[position]
        if rid is None:
            return False
        group = id_positions[rid]
        if len(group) < 2:
            return False
        strongest = max(amplitudes[p] for p in group)
        return amplitudes[position] < WEAK_DUPLICATE_RATIO * strongest

    if hopping is not None and len(responses):
        lo, hi = hopping.window_s
        period_s = capture.sampling_period_s
        for position, (response, rid) in enumerate(zip(responses, ids)):
            if rid is None or _weak_duplicate(position):
                continue
            try:
                assignment = assignment_fn(rid)
            except ValueError:
                continue
            arrival_local_s = capture.rx_timestamp_s + (
                response.index - capture.first_path_index
            ) * period_s
            expected_s = (
                t_tx_init_local_s
                + reply_delay_s
                + assignment.extra_delay_s
                + hopping.hop_offset_s(round_index, rid)
            )
            verification_s = arrival_local_s - expected_s
            checked += 1
            if not lo <= verification_s <= hi:
                flags.append(
                    DefenseFlag(
                        responder_id=rid,
                        reason="hop_window",
                        value=verification_s,
                    )
                )
                reject.add(position)

    anomaly = plan.anomaly
    if anomaly is not None and len(responses):
        if anomaly.flag_duplicate_ids:
            extra_ok = (
                not anomaly.duplicates_need_extra
                or len(responses) > expected_responders
            )
            if extra_ok:
                for rid, positions in id_positions.items():
                    if len(positions) < 2:
                        continue
                    strongest = max(amplitudes[p] for p in positions)
                    strong = sum(
                        1
                        for p in positions
                        if strongest <= 0.0
                        or amplitudes[p]
                        >= anomaly.dup_min_amplitude_ratio * strongest
                    )
                    if strong < 2:
                        continue
                    for position in positions:
                        flags.append(
                            DefenseFlag(
                                responder_id=rid,
                                reason="duplicate_id",
                                value=float(len(positions)),
                            )
                        )
                        reject.add(position)
        if anomaly.min_confidence > 1.0:
            for position, (response, rid) in enumerate(zip(responses, ids)):
                confidence = getattr(response, "confidence", None)
                if (
                    confidence is not None
                    and confidence < anomaly.min_confidence
                ):
                    flags.append(
                        DefenseFlag(
                            responder_id=rid,
                            reason="low_confidence",
                            value=float(confidence),
                        )
                    )
                    reject.add(position)
        if anomaly.max_tail_peak_ratio is not None:
            positions = range(len(responses))
            if anomaly.tail_check_peak_only:
                global_peak = int(np.argmax(np.abs(capture.samples)))
                positions = [
                    min(
                        range(len(responses)),
                        key=lambda p: abs(
                            float(responses[p].index) - global_peak
                        ),
                    )
                ]
            for position in positions:
                response, rid = responses[position], ids[position]
                ratio = anomaly.tail_peak_ratio(
                    capture.samples, int(round(float(response.index)))
                )
                if ratio > anomaly.max_tail_peak_ratio:
                    flags.append(
                        DefenseFlag(
                            responder_id=rid,
                            reason="tail_energy",
                            value=ratio,
                        )
                    )
                    reject.add(position)

    if reject:
        keep = [p for p in range(len(responses)) if p not in reject]
        ranging = RangingResult(
            d_twr_m=ranging.d_twr_m,
            responses=tuple(responses[p] for p in keep),
            distances_m=tuple(ranging.distances_m[p] for p in keep),
            responder_ids=tuple(ids[p] for p in keep),
        )
    rejected_ids = tuple(
        sorted({ids[p] for p in reject if ids[p] is not None})
    )
    report = DefenseReport(
        flags=tuple(flags),
        checked=checked,
        rejected_ids=rejected_ids,
        rejected_responses=len(reject),
    )
    return ranging, report
