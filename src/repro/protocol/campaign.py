"""Event-driven multi-round ranging campaigns.

Runs whole measurement campaigns — many concurrent-ranging rounds on a
schedule, as a deployed system would — on the deterministic event queue,
with per-node energy accounting and a full protocol trace.  This is the
layer the scalability example uses to measure *simulated wall-clock*
behaviour rather than closed-form cost, and it exercises the
:mod:`repro.netsim.engine` under a realistic workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.faults import ATTACK_KINDS
from repro.netsim.engine import EventQueue
from repro.netsim.trace import TraceRecorder
from repro.protocol.concurrent import (
    ConcurrentRangingSession,
    ConcurrentRoundResult,
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a campaign degrades gracefully instead of crashing.

    Parameters
    ----------
    quorum_fraction:
        A round is accepted once at least ``ceil(quorum_fraction * n)``
        of the *non-quarantined* responders are detected; below that the
        round is retried (bounded by ``max_round_retries``).
    max_round_retries:
        Retry budget per round.  After it is spent the best attempt is
        kept — possibly a *partial* result — and the campaign moves on.
    backoff_base_s / backoff_factor / backoff_jitter:
        Exponential backoff between retries: attempt ``k`` waits
        ``backoff_base_s * backoff_factor**k`` (simulated time) plus a
        uniform jitter of up to ``backoff_jitter`` of that delay.  The
        jitter stream derives from ``seed`` only — never from the
        simulation's own generators.
    quarantine_after:
        A responder missing this many *consecutive* accepted rounds is
        quarantined: reported in
        :attr:`CampaignResult.quarantined_responders` and excluded from
        the quorum so a dead node cannot stall the campaign.  It keeps
        being polled — if it comes back, the quarantine is lifted.
    seed:
        Entropy for the retry-jitter stream.
    """

    quorum_fraction: float = 0.5
    max_round_retries: int = 2
    backoff_base_s: float = 1e-3
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    quarantine_after: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.quorum_fraction <= 1.0:
            raise ValueError(
                "quorum_fraction must be in [0, 1], got "
                f"{self.quorum_fraction}"
            )
        if self.max_round_retries < 0:
            raise ValueError(
                "max_round_retries must be >= 0, got "
                f"{self.max_round_retries}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    def quorum(self, n_active_responders: int) -> int:
        """Detections required to accept a round."""
        if n_active_responders <= 0:
            return 0
        return int(math.ceil(self.quorum_fraction * n_active_responders))


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    The resilience fields stay at their zero defaults for campaigns run
    without a :class:`ResiliencePolicy`.
    """

    rounds: List[ConcurrentRoundResult] = field(default_factory=list)
    round_times_s: List[float] = field(default_factory=list)
    #: Responders quarantined at campaign end (still-missing nodes).
    quarantined_responders: Tuple[int, ...] = ()
    #: Total round retries the resilience policy consumed.
    retries: int = 0
    #: Rounds that ended with no capture at all (``result.partial``).
    partial_rounds: int = 0
    #: Total injected faults by kind, summed over the campaign.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: Rounds in which at least one *attack* fault was injected.
    attacked_rounds: int = 0
    #: Attacked rounds where the defense screen raised a flag.
    detected_rounds: int = 0
    #: Clean rounds where the defense screen raised a flag anyway.
    false_positive_rounds: int = 0

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def identification_rate(self) -> float:
        """Fraction of (round, responder) pairs correctly identified."""
        total = 0
        hits = 0
        for round_result in self.rounds:
            for outcome in round_result.outcomes:
                total += 1
                hits += outcome.identified
        if total == 0:
            raise ValueError("campaign has no rounds")
        return hits / total

    def distance_errors_m(self) -> np.ndarray:
        """Signed errors of all identified responders across rounds."""
        errors = [
            outcome.error_m
            for round_result in self.rounds
            for outcome in round_result.outcomes
            if outcome.identified and outcome.error_m is not None
        ]
        return np.array(errors)

    def merged_trace(self) -> TraceRecorder:
        """All rounds' radio operations in one recorder."""
        merged = TraceRecorder()
        for round_result in self.rounds:
            for event in round_result.trace.events:
                merged.record(
                    event.time_s,
                    event.node_id,
                    event.kind,
                    event.duration_s,
                    event.label,
                )
        return merged

    def total_energy_j(self, session: ConcurrentRangingSession) -> float:
        """Network-wide radio energy accumulated on the nodes."""
        meters = [session.initiator.radio.energy] + [
            node.radio.energy for node in session.responders
        ]
        return sum(meter.energy_j for meter in meters)


class RangingCampaign:
    """Schedule ``n_rounds`` concurrent ranging rounds on the event queue.

    Each round fires at ``round_interval_s`` spacing; the session's
    channel refreshes between rounds (independent fading), while node
    clocks and positions persist — matching a static deployment logging
    data over time.

    With a :class:`ResiliencePolicy` the campaign degrades gracefully:
    rounds below quorum are retried with exponential backoff, responders
    missing ``quarantine_after`` consecutive rounds are quarantined (and
    excluded from the quorum, never raised about), and all-silent rounds
    become *partial* results instead of exceptions.  Without a policy
    the behaviour — including every random draw — is identical to the
    pre-resilience campaign.
    """

    def __init__(
        self,
        session: ConcurrentRangingSession,
        round_interval_s: float = 0.1,
        resilience: ResiliencePolicy | None = None,
        metrics=None,
    ) -> None:
        if round_interval_s <= 0:
            raise ValueError(
                f"round interval must be positive, got {round_interval_s}"
            )
        self.session = session
        self.round_interval_s = float(round_interval_s)
        self.resilience = resilience
        self.metrics = metrics

    def run(self, n_rounds: int) -> CampaignResult:
        """Execute the campaign; returns all per-round results."""
        if n_rounds < 1:
            raise ValueError(f"need at least one round, got {n_rounds}")
        queue = EventQueue()
        result = CampaignResult()
        policy = self.resilience
        n_responders = len(self.session.responders)
        consecutive_misses = dict.fromkeys(range(n_responders), 0)
        quarantined: set = set()
        retry_rng = (
            np.random.default_rng(
                np.random.SeedSequence(policy.seed).spawn(1)[0]
            )
            if policy is not None
            else None
        )

        def fire_round(q: EventQueue, round_index: int) -> None:
            if policy is None:
                round_result = self.session.run_round(
                    start_time_s=q.now_s, round_index=round_index
                )
            else:
                active = n_responders - len(quarantined)
                round_result = self.session.run_resilient_round(
                    start_time_s=q.now_s,
                    round_index=round_index,
                    quorum=policy.quorum(active),
                    max_retries=policy.max_round_retries,
                    backoff_base_s=policy.backoff_base_s,
                    backoff_factor=policy.backoff_factor,
                    backoff_jitter=policy.backoff_jitter,
                    retry_rng=retry_rng,
                )
                result.retries += round_result.attempts - 1
                result.partial_rounds += int(round_result.partial)
                # With identification enabled, "seen" means correctly
                # identified — the detector may extract a present
                # responder's multipath as an extra (anonymous) peak, so
                # raw detection would mask truly dead nodes.  Anonymous
                # schemes (capacity 1) fall back to detection.
                identifying = self.session.scheme.capacity > 1
                for outcome in round_result.outcomes:
                    rid = outcome.responder_id
                    seen = (
                        outcome.identified
                        if identifying
                        else outcome.detected
                    )
                    if seen:
                        if rid in quarantined:
                            quarantined.discard(rid)
                            self._count("campaign.quarantine_lifted")
                        consecutive_misses[rid] = 0
                    else:
                        consecutive_misses[rid] += 1
                        if (
                            consecutive_misses[rid]
                            >= policy.quarantine_after
                            and rid not in quarantined
                        ):
                            quarantined.add(rid)
                            self._count("campaign.quarantined_responders")
                if round_result.attempts > 1:
                    self._count(
                        "campaign.retries", round_result.attempts - 1
                    )
                if round_result.partial:
                    self._count("campaign.partial_rounds")
            attack_events = 0
            for _, kind in round_result.fault_events:
                result.faults_injected[kind] = (
                    result.faults_injected.get(kind, 0) + 1
                )
                self._count(f"faults.{kind}")
                if kind in ATTACK_KINDS:
                    attack_events += 1
            if attack_events:
                result.attacked_rounds += 1
                self._count("faults.attacks_injected", attack_events)
            report = round_result.defense
            if report is not None and report.triggered:
                if attack_events:
                    result.detected_rounds += 1
                    self._count("defense.detected")
                else:
                    result.false_positive_rounds += 1
                    self._count("defense.false_positives")
            result.rounds.append(round_result)
            result.round_times_s.append(q.now_s)

        for i in range(n_rounds):
            queue.schedule(
                i * self.round_interval_s, fire_round, i, label=f"round-{i}"
            )
        queue.run()
        result.quarantined_responders = tuple(sorted(quarantined))
        return result

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)
