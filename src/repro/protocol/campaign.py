"""Event-driven multi-round ranging campaigns.

Runs whole measurement campaigns — many concurrent-ranging rounds on a
schedule, as a deployed system would — on the deterministic event queue,
with per-node energy accounting and a full protocol trace.  This is the
layer the scalability example uses to measure *simulated wall-clock*
behaviour rather than closed-form cost, and it exercises the
:mod:`repro.netsim.engine` under a realistic workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.netsim.engine import EventQueue
from repro.netsim.trace import TraceRecorder
from repro.protocol.concurrent import (
    ConcurrentRangingSession,
    ConcurrentRoundResult,
)


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    rounds: List[ConcurrentRoundResult] = field(default_factory=list)
    round_times_s: List[float] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def identification_rate(self) -> float:
        """Fraction of (round, responder) pairs correctly identified."""
        total = 0
        hits = 0
        for round_result in self.rounds:
            for outcome in round_result.outcomes:
                total += 1
                hits += outcome.identified
        if total == 0:
            raise ValueError("campaign has no rounds")
        return hits / total

    def distance_errors_m(self) -> np.ndarray:
        """Signed errors of all identified responders across rounds."""
        errors = [
            outcome.error_m
            for round_result in self.rounds
            for outcome in round_result.outcomes
            if outcome.identified and outcome.error_m is not None
        ]
        return np.array(errors)

    def merged_trace(self) -> TraceRecorder:
        """All rounds' radio operations in one recorder."""
        merged = TraceRecorder()
        for round_result in self.rounds:
            for event in round_result.trace.events:
                merged.record(
                    event.time_s,
                    event.node_id,
                    event.kind,
                    event.duration_s,
                    event.label,
                )
        return merged

    def total_energy_j(self, session: ConcurrentRangingSession) -> float:
        """Network-wide radio energy accumulated on the nodes."""
        meters = [session.initiator.radio.energy] + [
            node.radio.energy for node in session.responders
        ]
        return sum(meter.energy_j for meter in meters)


class RangingCampaign:
    """Schedule ``n_rounds`` concurrent ranging rounds on the event queue.

    Each round fires at ``round_interval_s`` spacing; the session's
    channel refreshes between rounds (independent fading), while node
    clocks and positions persist — matching a static deployment logging
    data over time.
    """

    def __init__(
        self,
        session: ConcurrentRangingSession,
        round_interval_s: float = 0.1,
    ) -> None:
        if round_interval_s <= 0:
            raise ValueError(
                f"round interval must be positive, got {round_interval_s}"
            )
        self.session = session
        self.round_interval_s = float(round_interval_s)

    def run(self, n_rounds: int) -> CampaignResult:
        """Execute the campaign; returns all per-round results."""
        if n_rounds < 1:
            raise ValueError(f"need at least one round, got {n_rounds}")
        queue = EventQueue()
        result = CampaignResult()

        def fire_round(q: EventQueue, round_index: int) -> None:
            round_result = self.session.run_round(start_time_s=q.now_s)
            result.rounds.append(round_result)
            result.round_times_s.append(q.now_s)

        for i in range(n_rounds):
            queue.schedule(
                i * self.round_interval_s, fire_round, i, label=f"round-{i}"
            )
        queue.run()
        return result
