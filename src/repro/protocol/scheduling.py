"""Message, airtime, and energy accounting: scheduled vs. concurrent.

Implements the cost model behind the paper's scalability argument
(Sect. I/III/VIII): scheduled SS-TWR needs ``N * (N - 1)`` messages for
all N nodes to range with each other, while a concurrent-ranging
initiator "has to broadcast just one message and ... receive just a
single message that aggregates all responses".  The functions here count
messages (paper convention), physical transmissions, sequential channel
slots, airtime, round duration, and energy (at the paper's 155 mA RX /
90 mA TX currents) for both schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    DELTA_RESP_S,
    RX_CURRENT_A,
    SUPPLY_VOLTAGE_V,
    TX_CURRENT_A,
)
from repro.protocol.messages import INIT_PAYLOAD_BYTES, RESP_PAYLOAD_BYTES
from repro.radio.frame import RadioConfig, frame_duration

#: Scheduling gap between consecutive exchanges in the scheduled scheme
#: (guard time for turnaround and processing).
SCHEDULING_GAP_S = 400e-6


@dataclass(frozen=True)
class RoundCost:
    """Cost of one full network-ranging round.

    Attributes
    ----------
    messages:
        Messages in the paper's counting: an aggregated concurrent
        response counts as *one* message at the initiator, so a
        full-network concurrent round costs ``2 N`` against the
        scheduled scheme's ``N (N - 1)``.
    transmissions:
        Physical frames put on the air (each concurrent responder still
        keys its radio once).
    channel_slots:
        Sequential channel-occupancy slots; overlapping concurrent
        responses share a slot.
    duration_s:
        Wall-clock duration of the round.
    tx_time_s / rx_time_s:
        Network-wide radio-on time per mode.
    """

    scheme: str
    n_nodes: int
    messages: int
    transmissions: int
    channel_slots: int
    duration_s: float
    tx_time_s: float
    rx_time_s: float

    @property
    def energy_j(self) -> float:
        """Network-wide radio energy at the DW1000 currents."""
        return (
            self.tx_time_s * TX_CURRENT_A + self.rx_time_s * RX_CURRENT_A
        ) * SUPPLY_VOLTAGE_V

    @property
    def energy_per_node_j(self) -> float:
        return self.energy_j / self.n_nodes


def _frame_times(config: RadioConfig) -> tuple[float, float]:
    """(INIT airtime, RESP airtime) for a PHY configuration."""
    init_s = frame_duration(config, INIT_PAYLOAD_BYTES).total_s
    resp_s = frame_duration(config, RESP_PAYLOAD_BYTES).total_s
    return init_s, resp_s


def scheduled_round_cost(
    n_nodes: int,
    config: RadioConfig | None = None,
    full_network: bool = True,
) -> RoundCost:
    """Cost of scheduled SS-TWR ranging.

    ``full_network=True`` is the paper's headline case: every pair of
    nodes exchanges INIT/RESP, giving ``N * (N - 1)`` messages in total
    ("each node requires N - 1 transmissions and receptions").  With
    ``False``, a single initiator ranges to its ``N - 1`` neighbours
    (``2 * (N - 1)`` messages).
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    config = config or RadioConfig()
    init_s, resp_s = _frame_times(config)
    exchange_s = init_s + DELTA_RESP_S + resp_s

    exchanges = (
        n_nodes * (n_nodes - 1) // 2 if full_network else (n_nodes - 1)
    )
    messages = 2 * exchanges
    duration = exchanges * (exchange_s + SCHEDULING_GAP_S)
    tx_time = exchanges * (init_s + resp_s)
    # Each frame is received by one peer; the initiator also listens
    # through the reply delay.
    rx_time = exchanges * (init_s + resp_s + DELTA_RESP_S)
    return RoundCost(
        scheme="scheduled",
        n_nodes=n_nodes,
        messages=messages,
        transmissions=messages,
        channel_slots=messages,
        duration_s=duration,
        tx_time_s=tx_time,
        rx_time_s=rx_time,
    )


def concurrent_round_cost(
    n_nodes: int,
    config: RadioConfig | None = None,
    full_network: bool = True,
) -> RoundCost:
    """Cost of concurrent ranging.

    Per round: one INIT broadcast, ``N - 1`` simultaneous RESP
    transmissions that the initiator receives as a *single* aggregate
    message occupying a single channel slot.  ``full_network=True``
    repeats the round with every node as initiator.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    config = config or RadioConfig()
    init_s, resp_s = _frame_times(config)
    round_s = init_s + DELTA_RESP_S + resp_s

    rounds = n_nodes if full_network else 1
    responders = n_nodes - 1
    return RoundCost(
        scheme="concurrent",
        n_nodes=n_nodes,
        messages=rounds * 2,  # INIT + one aggregate RESP per round
        transmissions=rounds * (1 + responders),
        channel_slots=rounds * 2,
        duration_s=rounds * (round_s + SCHEDULING_GAP_S),
        tx_time_s=rounds * (init_s + responders * resp_s),
        rx_time_s=rounds * (responders * init_s + resp_s + DELTA_RESP_S),
    )


def network_sweep(
    node_counts,
    config: RadioConfig | None = None,
) -> list[tuple[RoundCost, RoundCost]]:
    """(scheduled, concurrent) cost pairs over a range of network sizes."""
    config = config or RadioConfig()
    return [
        (
            scheduled_round_cost(n, config),
            concurrent_round_cost(n, config),
        )
        for n in node_counts
    ]
