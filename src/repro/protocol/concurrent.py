"""The concurrent ranging round (paper Fig. 3 right, Sect. III-VIII).

One round:

1. The initiator broadcasts ``INIT``.
2. Every responder receives it, waits ``DELTA_RESP`` (plus its RPM slot
   delay) on its own clock, and transmits ``RESP``; the programmed time
   is floored to the ~8 ns delayed-TX grid as on real hardware.
3. All RESP frames superpose at the initiator; the radio estimates one
   CIR containing every responder's pulse.
4. The initiator decodes the payload of the first-arriving response
   (still possible per the paper / Corbalan & Picco) and computes the
   anchor distance with Eq. 2.
5. Search-and-subtract + pulse-shape classification extract every
   response from the CIR; slot + shape decode responder IDs; Eq. 4 maps
   delays to distances.

The session supports three operating modes, matching the paper's
narrative arc: plain detection (Sect. IV), pulse-shaping identification
(Sect. V), and the combined RPM x pulse-shaping scheme (Sect. VIII) —
choose by constructing with ``n_slots == 1`` / ``n_shapes == 1`` etc.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.channel.stochastic import IndoorEnvironment
from repro.constants import DELTA_RESP_S
from repro.core.detection import SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.core.ranging import RangingResult, twr_distance_compensated
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.netsim.trace import TraceRecorder
from repro.protocol.messages import (
    INIT_PAYLOAD_BYTES,
    RESP_PAYLOAD_BYTES,
    RespMessage,
)
from repro.protocol.twr import DEFAULT_CFO_ERROR_PPM
from repro.radio.dw1000 import CirCapture, SignalArrival
from repro.radio.frame import frame_duration
from repro.radio.timebase import quantize_timestamp_s
from repro.signal.templates import TemplateBank


@dataclass(frozen=True)
class ResponderOutcome:
    """Ground truth and per-responder decode outcome for one round."""

    responder_id: int
    true_distance_m: float
    assigned_slot: int
    assigned_shape: int
    estimated_distance_m: float | None
    decoded_id: int | None

    @property
    def detected(self) -> bool:
        return self.estimated_distance_m is not None

    @property
    def identified(self) -> bool:
        return self.decoded_id == self.responder_id

    @property
    def error_m(self) -> float | None:
        if self.estimated_distance_m is None:
            return None
        return self.estimated_distance_m - self.true_distance_m


@dataclass(frozen=True)
class ConcurrentRoundResult:
    """Everything produced by one concurrent ranging round."""

    capture: CirCapture
    d_twr_m: float
    classified: tuple
    ranging: RangingResult
    outcomes: tuple
    trace: TraceRecorder

    @property
    def distances_m(self) -> tuple:
        return self.ranging.distances_m

    @property
    def detection_count(self) -> int:
        return len(self.ranging)

    def outcome_for(self, responder_id: int) -> ResponderOutcome:
        for outcome in self.outcomes:
            if outcome.responder_id == responder_id:
                return outcome
        raise KeyError(f"no responder with id {responder_id} in this round")


class ConcurrentRangingSession:
    """A fixed topology running concurrent ranging rounds.

    Parameters
    ----------
    medium:
        The wireless medium holding all nodes.
    initiator:
        The initiating node.
    responders:
        Responding nodes; responder IDs for the slot/shape mapping are
        their positions in this list (0-based).
    scheme:
        Slot/shape assignment.  Use ``SlotPlan(n_slots=1, ...)`` plus a
        single-template bank for plain Sect. IV operation.
    detector_config:
        Search-and-subtract configuration; ``max_responses`` defaults to
        the number of responders.
    compensate_tx_quantization:
        When ``True``, responders transmit exactly at the programmed
        instant instead of flooring to the ~8 ns grid — the
        "next-generation transceiver" assumption the paper mentions when
        declaring the artefact out of scope.  Default ``False``
        (faithful DW1000 behaviour).
    allow_duplicate_assignments:
        Permit more responders than the scheme's capacity by wrapping
        IDs (``assignment(id % capacity)``).  Used for anonymity
        stress tests such as the paper's Sect. VI overlap experiment,
        where two responders deliberately share slot and shape.
    init_loss_probability:
        Probability that a responder fails to decode the INIT broadcast
        and therefore stays silent this round (frame loss, deep fade).
        Missing responders simply do not appear in the CIR; pair with a
        ``min_peak_snr`` detector gate so the detector does not invent
        them.
    """

    def __init__(
        self,
        medium: Medium,
        initiator: Node,
        responders: Sequence[Node],
        scheme: CombinedScheme,
        detector_config: SearchAndSubtractConfig | None = None,
        reply_delay_s: float = DELTA_RESP_S,
        cfo_error_ppm: float = DEFAULT_CFO_ERROR_PPM,
        compensate_tx_quantization: bool = False,
        allow_duplicate_assignments: bool = False,
        init_loss_probability: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(responders) == 0:
            raise ValueError("need at least one responder")
        if len(responders) > scheme.capacity and not allow_duplicate_assignments:
            raise ValueError(
                f"{len(responders)} responders exceed scheme capacity "
                f"{scheme.capacity}"
            )
        self._wrap_assignments = bool(allow_duplicate_assignments)
        if not 0.0 <= init_loss_probability < 1.0:
            raise ValueError(
                "init_loss_probability must be in [0, 1), got "
                f"{init_loss_probability}"
            )
        self.init_loss_probability = float(init_loss_probability)
        self.medium = medium
        self.initiator = initiator
        self.responders = list(responders)
        self.scheme = scheme
        self.reply_delay_s = float(reply_delay_s)
        self.cfo_error_ppm = float(cfo_error_ppm)
        self.compensate_tx_quantization = bool(compensate_tx_quantization)
        self.rng = rng or np.random.default_rng()
        config = detector_config or SearchAndSubtractConfig()
        if config.max_responses < len(responders):
            # dataclasses.replace keeps every other knob (upsampling,
            # gate, fast/naive engine) exactly as configured.
            config = dataclasses.replace(
                config, max_responses=len(responders)
            )
        self.classifier = PulseShapeClassifier(scheme.bank, config)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def build(
        cls,
        responder_distances_m: Sequence[float],
        n_slots: int = 1,
        n_shapes: int | None = None,
        environment: IndoorEnvironment | None = None,
        seed: int | None = None,
        **kwargs,
    ) -> "ConcurrentRangingSession":
        """Convenience constructor: initiator at the origin, responders
        on a line at the given distances (the paper's hallway layout).

        ``n_shapes`` defaults to one shape per responder (up to the four
        paper shapes) when identification is wanted, or pass 1 for plain
        anonymous detection.
        """
        if len(responder_distances_m) == 0:
            raise ValueError("need at least one responder distance")
        rng = np.random.default_rng(seed)
        medium = Medium(
            environment=environment or IndoorEnvironment.hallway(), rng=rng
        )
        initiator = Node.at(0, 0.0, 0.0, rng=rng)
        responders = [
            Node.at(i + 1, float(d), 0.0, rng=rng)
            for i, d in enumerate(responder_distances_m)
        ]
        medium.add_nodes([initiator] + responders)

        if n_shapes is None:
            n_shapes = min(len(responder_distances_m), 4)
        bank = TemplateBank.paper_bank(min(n_shapes, 4)) if n_shapes <= 4 else (
            TemplateBank.spread(n_shapes)
        )
        plan = SlotPlan.for_range(20.0, n_slots=n_slots)
        scheme = CombinedScheme(plan, bank)
        return cls(
            medium=medium,
            initiator=initiator,
            responders=responders,
            scheme=scheme,
            rng=rng,
            **kwargs,
        )

    def _assignment(self, responder_id: int):
        """Slot/shape assignment, wrapping IDs when duplicates are allowed."""
        if self._wrap_assignments:
            responder_id = responder_id % self.scheme.capacity
        return self.scheme.assignment(responder_id)

    # -- the round ----------------------------------------------------------

    def run_round(
        self, start_time_s: float | None = None
    ) -> ConcurrentRoundResult:
        """Execute one full concurrent ranging round.

        ``start_time_s`` defaults to a random instant so that the ~8 ns
        delayed-TX quantisation error — which depends on where the
        scheduled reply time falls on the hardware grid — varies between
        rounds as it does on real hardware.  Pass an explicit time for
        bit-reproducible single rounds.
        """
        rng = self.rng
        if start_time_s is None:
            start_time_s = float(rng.uniform(0.0, 1.0))
        trace = TraceRecorder()
        init_node = self.initiator
        init_config = init_node.radio.config
        init_airtime = frame_duration(init_config, INIT_PAYLOAD_BYTES).total_s
        resp_airtime = frame_duration(init_config, RESP_PAYLOAD_BYTES).total_s

        # 1. Broadcast INIT.
        t_tx_init_global = start_time_s
        t_tx_init_local = quantize_timestamp_s(
            init_node.radio.clock.local_from_global(t_tx_init_global)
        )
        trace.record(t_tx_init_global, init_node.node_id, "tx", init_airtime, "INIT")
        init_node.account_tx(init_airtime)

        # 2. Responders receive and schedule their replies.
        arrivals: List[SignalArrival] = []
        messages: Dict[int, RespMessage] = {}
        truth: Dict[int, float] = {}
        for responder_id, node in enumerate(self.responders):
            if (
                self.init_loss_probability > 0.0
                and rng.random() < self.init_loss_probability
            ):
                # Responder missed the INIT: it never learns about this
                # round and stays silent.  Truth still records it so the
                # evaluation counts the miss.
                truth[responder_id] = init_node.distance_to(node)
                continue
            channel = self.medium.channel_between(
                init_node.node_id, node.node_id
            )
            tof = channel.first_path.delay_s
            t_rx_local = node.radio.timestamp_arrival(
                t_tx_init_global + tof,
                rng,
                pulse_register=init_node.radio.pulse_register,
            )
            trace.record(
                t_tx_init_global + tof, node.node_id, "rx", init_airtime, "INIT"
            )
            node.account_rx(init_airtime)

            assignment = self._assignment(responder_id)
            node.radio.set_pulse_register(assignment.register)
            nominal_local = (
                t_rx_local + self.reply_delay_s + assignment.extra_delay_s
            )
            if self.compensate_tx_quantization:
                t_tx_local = nominal_local
            else:
                t_tx_local = node.radio.schedule_delayed_tx(nominal_local)
            t_tx_global = node.radio.clock.global_from_local(t_tx_local)

            messages[responder_id] = RespMessage(
                responder_id=responder_id,
                t_rx_local_s=t_rx_local,
                t_tx_local_s=t_tx_local,
            )
            truth[responder_id] = init_node.distance_to(node)
            arrivals.append(
                SignalArrival(
                    channel=channel,
                    pulse=node.radio.transmit_pulse(),
                    tx_time_s=t_tx_global,
                    source_id=responder_id,
                )
            )
            trace.record(t_tx_global, node.node_id, "tx", resp_airtime, "RESP")
            node.account_tx(resp_airtime)

        # 3. The initiator captures one CIR of the superposition.
        if not arrivals:
            raise RuntimeError(
                "no responder decoded the INIT this round (frame loss); "
                "the initiator's receive window times out"
            )
        capture = init_node.radio.capture_cir(arrivals, rng)
        trace.record(
            min(a.first_path_arrival_s for a in arrivals),
            init_node.node_id,
            "rx",
            resp_airtime,
            "RESP(aggregate)",
        )
        init_node.account_rx(resp_airtime)

        # 4. Anchor distance from the first-arriving response's payload.
        anchor_id = min(
            range(len(arrivals)),
            key=lambda i: arrivals[i].first_path_arrival_s,
        )
        anchor_source = arrivals[anchor_id].source_id
        anchor_node = self.responders[anchor_source]
        anchor_message = messages[anchor_source]
        true_drift_ppm = anchor_node.radio.clock.relative_drift_ppm(
            init_node.radio.clock
        )
        estimated_drift_ppm = true_drift_ppm + float(
            rng.normal(0.0, self.cfo_error_ppm)
        )
        # The anchor's reply time must exclude its RPM slot delay, which
        # the initiator knows from the anchor's (decoded) identity.
        anchor_assignment = self._assignment(anchor_source)
        d_twr = twr_distance_compensated(
            t_tx_init_local,
            capture.rx_timestamp_s,
            anchor_message.t_rx_local_s,
            anchor_message.t_tx_local_s - anchor_assignment.extra_delay_s,
            relative_drift_ppm=estimated_drift_ppm,
        )

        # 5. Detect, classify, decode.
        classified = self.classifier.classify(
            capture.samples,
            capture.sampling_period_s,
            noise_std=capture.noise_std,
        )
        ranging = self.scheme.decode_responses(classified, d_twr)

        outcomes = self._match_outcomes(ranging, truth)
        self.medium.new_coherence_interval()
        return ConcurrentRoundResult(
            capture=capture,
            d_twr_m=d_twr,
            classified=tuple(classified),
            ranging=ranging,
            outcomes=tuple(outcomes),
            trace=trace,
        )

    def _match_outcomes(
        self,
        ranging: RangingResult,
        truth: Dict[int, float],
    ) -> List[ResponderOutcome]:
        """Pair decoded (id, distance) tuples with ground truth.

        A decoded ID claims its ground-truth responder directly; decoded
        responses with unknown/duplicate IDs are matched to the remaining
        responder with the closest true distance (evaluation-only logic —
        a deployment would simply report the decoded IDs).
        """
        decoded: Dict[int, float] = {}
        leftovers: List[float] = []
        for rid, distance in zip(ranging.responder_ids, ranging.distances_m):
            if rid is not None and rid in truth and rid not in decoded:
                decoded[rid] = distance
            else:
                leftovers.append(distance)

        outcomes = []
        for responder_id, true_distance in truth.items():
            assignment = self._assignment(responder_id)
            if responder_id in decoded:
                outcomes.append(
                    ResponderOutcome(
                        responder_id=responder_id,
                        true_distance_m=true_distance,
                        assigned_slot=assignment.slot,
                        assigned_shape=assignment.shape_index,
                        estimated_distance_m=decoded[responder_id],
                        decoded_id=responder_id,
                    )
                )
                continue
            # Nearest leftover estimate, if any.
            estimate = None
            if leftovers:
                best = min(
                    range(len(leftovers)),
                    key=lambda i: abs(leftovers[i] - true_distance),
                )
                estimate = leftovers.pop(best)
            outcomes.append(
                ResponderOutcome(
                    responder_id=responder_id,
                    true_distance_m=true_distance,
                    assigned_slot=assignment.slot,
                    assigned_shape=assignment.shape_index,
                    estimated_distance_m=estimate,
                    decoded_id=None,
                )
            )
        return outcomes
