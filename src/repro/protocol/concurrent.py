"""The concurrent ranging round (paper Fig. 3 right, Sect. III-VIII).

One round:

1. The initiator broadcasts ``INIT``.
2. Every responder receives it, waits ``DELTA_RESP`` (plus its RPM slot
   delay) on its own clock, and transmits ``RESP``; the programmed time
   is floored to the ~8 ns delayed-TX grid as on real hardware.
3. All RESP frames superpose at the initiator; the radio estimates one
   CIR containing every responder's pulse.
4. The initiator decodes the payload of the first-arriving response
   (still possible per the paper / Corbalan & Picco) and computes the
   anchor distance with Eq. 2.
5. Search-and-subtract + pulse-shape classification extract every
   response from the CIR; slot + shape decode responder IDs; Eq. 4 maps
   delays to distances.

The session supports three operating modes, matching the paper's
narrative arc: plain detection (Sect. IV), pulse-shaping identification
(Sect. V), and the combined RPM x pulse-shaping scheme (Sect. VIII) —
choose by constructing with ``n_slots == 1`` / ``n_shapes == 1`` etc.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.channel.stochastic import IndoorEnvironment
from repro.constants import DELTA_RESP_S
from repro.core.detection import SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.core.ranging import RangingResult, twr_distance_compensated
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.faults import ActiveFaults, FaultContext, FaultPlan
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.netsim.trace import TraceRecorder
from repro.protocol.defense import DefensePlan, DefenseReport, screen_round
from repro.protocol.messages import (
    INIT_PAYLOAD_BYTES,
    RESP_PAYLOAD_BYTES,
    RespMessage,
)
from repro.protocol.twr import DEFAULT_CFO_ERROR_PPM
from repro.radio.dw1000 import CirCapture, SignalArrival
from repro.radio.frame import frame_duration
from repro.radio.timebase import Clock, quantize_timestamp_s
from repro.signal.templates import TemplateBank


class EmptyRoundError(RuntimeError):
    """No responder transmitted this round (frame loss, dropout).

    Subclasses :class:`RuntimeError` for backwards compatibility with
    callers that catch the old generic error.  Carries the round's
    ground truth and fault annotations so resilient callers can build a
    partial :class:`ConcurrentRoundResult` instead of crashing.
    """

    def __init__(
        self,
        truth: Dict[int, float],
        fault_events: tuple = (),
        trace: TraceRecorder | None = None,
    ) -> None:
        super().__init__(
            "no responder decoded the INIT this round (frame loss); "
            "the initiator's receive window times out"
        )
        self.truth = dict(truth)
        self.fault_events = tuple(fault_events)
        self.trace = trace if trace is not None else TraceRecorder()


@dataclass(frozen=True)
class ResponderOutcome:
    """Ground truth and per-responder decode outcome for one round."""

    responder_id: int
    true_distance_m: float
    assigned_slot: int
    assigned_shape: int
    estimated_distance_m: float | None
    decoded_id: int | None
    #: Fault kinds injected against this responder in this round
    #: (e.g. ``("dropout",)``); empty when the round was clean.
    faults: tuple = ()

    @property
    def detected(self) -> bool:
        return self.estimated_distance_m is not None

    @property
    def faulted(self) -> bool:
        return len(self.faults) > 0

    @property
    def identified(self) -> bool:
        return self.decoded_id == self.responder_id

    @property
    def error_m(self) -> float | None:
        if self.estimated_distance_m is None:
            return None
        return self.estimated_distance_m - self.true_distance_m


@dataclass(frozen=True)
class ConcurrentRoundResult:
    """Everything produced by one concurrent ranging round.

    ``capture`` is ``None`` for a *partial* round — every responder
    stayed silent and the initiator's receive window timed out, yet the
    round still reports per-responder outcomes with fault annotations
    instead of raising (see
    :meth:`ConcurrentRangingSession.run_resilient_round`).
    """

    capture: CirCapture | None
    d_twr_m: float
    classified: tuple
    ranging: RangingResult
    outcomes: tuple
    trace: TraceRecorder
    #: ``(responder_id_or_None, fault_kind)`` annotations for every
    #: fault injected this round (``None`` = round/initiator level).
    fault_events: tuple = ()
    #: How many attempts (1 + retries) this round consumed.
    attempts: int = 1
    #: Campaign round index this result belongs to.
    round_index: int = 0
    #: What the defense screen flagged/rejected (``None`` when the
    #: session runs without a :class:`~repro.protocol.defense.DefensePlan`).
    defense: DefenseReport | None = None

    @property
    def partial(self) -> bool:
        """True when the round produced no capture (all-silent round)."""
        return self.capture is None

    @property
    def distances_m(self) -> tuple:
        return self.ranging.distances_m

    @property
    def detection_count(self) -> int:
        return len(self.ranging)

    def outcome_for(self, responder_id: int) -> ResponderOutcome:
        for outcome in self.outcomes:
            if outcome.responder_id == responder_id:
                return outcome
        raise KeyError(f"no responder with id {responder_id} in this round")


@dataclass(frozen=True)
class PendingRound:
    """A round paused at the classification boundary.

    :meth:`ConcurrentRangingSession.begin_round` runs everything that
    consumes the session RNG — INIT broadcast, responder scheduling,
    channel draws, CIR capture, anchor TWR — and stops right before the
    classifier.  Classification itself consumes *no* randomness, so a
    batch runner can stack many pending rounds' CIRs into one
    :func:`repro.core.batch_id.classify_batch` pass and hand each result
    back to :meth:`ConcurrentRangingSession.finish_round` with results
    byte-identical to serial :meth:`~ConcurrentRangingSession.run_round`
    calls.

    The ``cir``/``noise_std`` convenience accessors expose exactly what
    the classifier consumes (and what
    :class:`~repro.core.batch_id.ClassifyBatchTrial` ``prepare``
    callables return).
    """

    capture: CirCapture
    d_twr_m: float
    truth: Dict[int, float]
    trace: TraceRecorder
    round_index: int = 0
    #: Fault machinery active for this round (internal; consumed by
    #: ``finish_round`` for the per-responder fault annotations).
    active: "ActiveFaults | None" = None
    #: INIT transmit instant on the initiator's clock — the reference
    #: the defense screen verifies reply arrival times against.
    t_tx_init_local_s: float = 0.0
    #: Local index of the first-arriving responder whose payload the
    #: initiator decoded (``None`` on legacy pickles).  With
    #: ``decode_with_anchor_slot`` the decode uses its slot as the
    #: anchor slot instead of assuming slot 0 is occupied.
    anchor_source: int | None = None

    @property
    def cir(self) -> np.ndarray:
        return self.capture.samples

    @property
    def sampling_period_s(self) -> float:
        return self.capture.sampling_period_s

    @property
    def noise_std(self) -> float:
        return self.capture.noise_std


class ConcurrentRangingSession:
    """A fixed topology running concurrent ranging rounds.

    Parameters
    ----------
    medium:
        The wireless medium holding all nodes.
    initiator:
        The initiating node.
    responders:
        Responding nodes; responder IDs for the slot/shape mapping are
        their positions in this list (0-based).
    scheme:
        Slot/shape assignment.  Use ``SlotPlan(n_slots=1, ...)`` plus a
        single-template bank for plain Sect. IV operation.
    detector_config:
        Search-and-subtract configuration; ``max_responses`` defaults to
        the number of responders.
    compensate_tx_quantization:
        When ``True``, responders transmit exactly at the programmed
        instant instead of flooring to the ~8 ns grid — the
        "next-generation transceiver" assumption the paper mentions when
        declaring the artefact out of scope.  Default ``False``
        (faithful DW1000 behaviour).
    allow_duplicate_assignments:
        Permit more responders than the scheme's capacity by wrapping
        IDs (``assignment(id % capacity)``).  Used for anonymity
        stress tests such as the paper's Sect. VI overlap experiment,
        where two responders deliberately share slot and shape.
    init_loss_probability:
        Probability that a responder fails to decode the INIT broadcast
        and therefore stays silent this round (frame loss, deep fade).
        Missing responders simply do not appear in the CIR; pair with a
        ``min_peak_snr`` detector gate so the detector does not invent
        them.
    faults:
        Optional :class:`~repro.faults.FaultPlan`.  When given (and
        non-empty), the plan is activated and its injectors perturb the
        round through the narrow seams of the stack (INIT loss,
        responder dropout, reply jitter, clock-drift ramps, channel and
        CIR transforms).  An empty or absent plan leaves every round
        bit-identical to a session without fault machinery.
    scheme_ids:
        Optional per-responder *global* scheme identities.  By default a
        responder's scheme ID is its position in ``responders``; a swarm
        round instead polls a window of a much larger population, where
        responder ``i`` carries a persistent global ID.  When given
        (one entry per responder, any non-negative integers), slot and
        shape derive from ``scheme_ids[i] % capacity`` and decoding
        translates recovered scheme IDs back to local responders.
        ``None`` (default) keeps the historical identity mapping
        byte-for-byte.
    decode_with_anchor_slot:
        When ``True``, :meth:`finish_round` decodes slots relative to
        the *anchor responder's* assigned slot (known to the initiator
        from the first-arriving response's payload) instead of assuming
        the earliest response occupies slot 0 — required when the polled
        window does not contain a slot-0 responder.  Default ``False``
        (the historical behaviour; every existing experiment populates
        slot 0).
    defense:
        Optional :class:`~repro.protocol.defense.DefensePlan`.  With
        time hopping enabled, every responder adds its secret
        per-(round, responder) jitter to the RPM reply slot and the
        initiator verifies each decoded response's arrival time against
        the re-derived hop in :meth:`finish_round`; the anomaly
        detector additionally screens CIR features.  Rejected responses
        are removed from the round's ranging result (they read as
        misses) and reported on
        :attr:`ConcurrentRoundResult.defense`.  ``None`` leaves every
        round bit-identical to a session without defenses.
    """

    def __init__(
        self,
        medium: Medium,
        initiator: Node,
        responders: Sequence[Node],
        scheme: CombinedScheme,
        detector_config: SearchAndSubtractConfig | None = None,
        reply_delay_s: float = DELTA_RESP_S,
        cfo_error_ppm: float = DEFAULT_CFO_ERROR_PPM,
        compensate_tx_quantization: bool = False,
        allow_duplicate_assignments: bool = False,
        init_loss_probability: float = 0.0,
        rng: np.random.Generator | None = None,
        faults: FaultPlan | None = None,
        defense: DefensePlan | None = None,
        scheme_ids: Sequence[int] | None = None,
        decode_with_anchor_slot: bool = False,
    ) -> None:
        if len(responders) == 0:
            raise ValueError("need at least one responder")
        if scheme_ids is not None:
            if len(scheme_ids) != len(responders):
                raise ValueError(
                    f"scheme_ids must have one entry per responder "
                    f"({len(responders)}), got {len(scheme_ids)}"
                )
            if any(int(s) < 0 for s in scheme_ids):
                raise ValueError("scheme IDs must be non-negative")
            self._scheme_ids: tuple | None = tuple(
                int(s) for s in scheme_ids
            )
        else:
            self._scheme_ids = None
        if (
            len(responders) > scheme.capacity
            and not allow_duplicate_assignments
            and scheme_ids is None
        ):
            raise ValueError(
                f"{len(responders)} responders exceed scheme capacity "
                f"{scheme.capacity}"
            )
        self._wrap_assignments = bool(allow_duplicate_assignments)
        self.decode_with_anchor_slot = bool(decode_with_anchor_slot)
        if not 0.0 <= init_loss_probability < 1.0:
            raise ValueError(
                "init_loss_probability must be in [0, 1), got "
                f"{init_loss_probability}"
            )
        self.init_loss_probability = float(init_loss_probability)
        self.medium = medium
        self.initiator = initiator
        self.responders = list(responders)
        self.scheme = scheme
        self.reply_delay_s = float(reply_delay_s)
        self.cfo_error_ppm = float(cfo_error_ppm)
        self.compensate_tx_quantization = bool(compensate_tx_quantization)
        self.rng = rng or np.random.default_rng()
        config = detector_config or SearchAndSubtractConfig()
        if config.max_responses < len(responders):
            # dataclasses.replace keeps every other knob (upsampling,
            # gate, fast/naive engine) exactly as configured.
            config = dataclasses.replace(
                config, max_responses=len(responders)
            )
        self.classifier = PulseShapeClassifier(scheme.bank, config)
        if defense is not None and not isinstance(defense, DefensePlan):
            raise TypeError(
                "defense must be a DefensePlan or None, got "
                f"{type(defense).__name__}"
            )
        self.defense = defense
        self.fault_plan: FaultPlan | None = None
        self._active_faults: ActiveFaults | None = None
        self.attach_faults(faults)

    # -- fault injection ----------------------------------------------------

    def attach_faults(self, plan: FaultPlan | None) -> None:
        """(Re)attach a fault plan, activating fresh injector streams.

        Passing ``None`` or an empty plan detaches fault injection
        entirely — every seam returns to its zero-cost pass-through.
        Monte-Carlo trial functions call this with
        ``plan.with_seed((base_seed, trial_index))`` so fault decisions
        stay byte-identical for any worker count.
        """
        self.fault_plan = plan
        if plan is not None and not plan.is_empty:
            self._active_faults = plan.activate()
        else:
            self._active_faults = None

    @property
    def active_faults(self) -> ActiveFaults | None:
        """The activated fault runtime (``None`` without a plan)."""
        return self._active_faults

    # -- construction helpers ---------------------------------------------

    @classmethod
    def build(
        cls,
        responder_distances_m: Sequence[float],
        n_slots: int = 1,
        n_shapes: int | None = None,
        environment: IndoorEnvironment | None = None,
        seed: int | None = None,
        **kwargs,
    ) -> "ConcurrentRangingSession":
        """Convenience constructor: initiator at the origin, responders
        on a line at the given distances (the paper's hallway layout).

        ``n_shapes`` defaults to one shape per responder (up to the four
        paper shapes) when identification is wanted, or pass 1 for plain
        anonymous detection.
        """
        if len(responder_distances_m) == 0:
            raise ValueError("need at least one responder distance")
        rng = np.random.default_rng(seed)
        medium = Medium(
            environment=environment or IndoorEnvironment.hallway(), rng=rng
        )
        initiator = Node.at(0, 0.0, 0.0, rng=rng)
        responders = [
            Node.at(i + 1, float(d), 0.0, rng=rng)
            for i, d in enumerate(responder_distances_m)
        ]
        medium.add_nodes([initiator] + responders)

        if n_shapes is None:
            n_shapes = min(len(responder_distances_m), 4)
        bank = TemplateBank.paper_bank(min(n_shapes, 4)) if n_shapes <= 4 else (
            TemplateBank.spread(n_shapes)
        )
        plan = SlotPlan.for_range(20.0, n_slots=n_slots)
        scheme = CombinedScheme(plan, bank)
        return cls(
            medium=medium,
            initiator=initiator,
            responders=responders,
            scheme=scheme,
            rng=rng,
            **kwargs,
        )

    def _assignment(self, responder_id: int):
        """Slot/shape assignment, wrapping IDs when duplicates are allowed."""
        if self._scheme_ids is not None:
            responder_id = (
                self._scheme_ids[responder_id] % self.scheme.capacity
            )
        elif self._wrap_assignments:
            responder_id = responder_id % self.scheme.capacity
        return self.scheme.assignment(responder_id)

    # -- the round ----------------------------------------------------------

    def run_round(
        self,
        start_time_s: float | None = None,
        round_index: int = 0,
        _attempt: int = 0,
    ) -> ConcurrentRoundResult:
        """Execute one full concurrent ranging round.

        ``start_time_s`` defaults to a random instant so that the ~8 ns
        delayed-TX quantisation error — which depends on where the
        scheduled reply time falls on the hardware grid — varies between
        rounds as it does on real hardware.  Pass an explicit time for
        bit-reproducible single rounds.  ``round_index`` feeds the fault
        context (ramps, NLOS onset) and is recorded on the result.

        Raises :class:`EmptyRoundError` when every responder stays
        silent; :meth:`run_resilient_round` converts that into a partial
        result instead.

        Equivalent to :meth:`begin_round` → serial classification →
        :meth:`finish_round`; batch runners use the split form to stack
        many rounds' CIRs into one
        :func:`repro.core.batch_id.classify_batch` pass.
        """
        pending = self.begin_round(
            start_time_s, round_index, _attempt=_attempt
        )
        classified = self.classifier.classify(
            pending.capture.samples,
            pending.capture.sampling_period_s,
            noise_std=pending.capture.noise_std,
        )
        return self.finish_round(pending, classified)

    def begin_round(
        self,
        start_time_s: float | None = None,
        round_index: int = 0,
        *,
        _attempt: int = 0,
    ) -> PendingRound:
        """Run a round up to (but excluding) classification.

        Consumes exactly the randomness a full :meth:`run_round` would
        have consumed before the classifier (which consumes none), so
        ``begin_round`` + external classification +
        :meth:`finish_round` reproduces :meth:`run_round` byte for
        byte.  Raises :class:`EmptyRoundError` exactly as
        :meth:`run_round` does.
        """
        rng = self.rng
        if start_time_s is None:
            start_time_s = float(rng.uniform(0.0, 1.0))
        active = self._active_faults
        ctx: FaultContext | None = None
        previous_transform = None
        if active is not None:
            ctx = FaultContext(
                round_index=round_index,
                time_s=start_time_s,
                n_responders=len(self.responders),
                attempt=_attempt,
            )
            active.begin_round(ctx)
            previous_transform = self.medium.channel_transform
            self.medium.channel_transform = active.channel_transform(ctx)
        try:
            return self._begin_round_inner(
                rng, start_time_s, round_index, active, ctx
            )
        finally:
            if active is not None:
                self.medium.channel_transform = previous_transform

    def _begin_round_inner(
        self,
        rng: np.random.Generator,
        start_time_s: float,
        round_index: int,
        active: ActiveFaults | None,
        ctx: FaultContext | None,
    ) -> PendingRound:
        trace = TraceRecorder()
        init_node = self.initiator
        init_config = init_node.radio.config
        init_airtime = frame_duration(init_config, INIT_PAYLOAD_BYTES).total_s
        resp_airtime = frame_duration(init_config, RESP_PAYLOAD_BYTES).total_s

        # 1. Broadcast INIT.
        t_tx_init_global = start_time_s
        t_tx_init_local = quantize_timestamp_s(
            init_node.radio.clock.local_from_global(t_tx_init_global)
        )
        trace.record(t_tx_init_global, init_node.node_id, "tx", init_airtime, "INIT")
        init_node.account_tx(init_airtime)

        # 2. Responders receive and schedule their replies.
        arrivals: List[SignalArrival] = []
        messages: Dict[int, RespMessage] = {}
        truth: Dict[int, float] = {}
        for responder_id, node in enumerate(self.responders):
            # Truth always records the responder so the evaluation
            # counts silent ones as misses.
            truth[responder_id] = init_node.distance_to(node)
            if active is not None and active.init_lost(ctx, responder_id):
                # Injected poll loss: the responder never decodes INIT.
                continue
            if (
                self.init_loss_probability > 0.0
                and rng.random() < self.init_loss_probability
            ):
                # Responder missed the INIT: it never learns about this
                # round and stays silent.
                continue
            channel = self.medium.channel_between(
                init_node.node_id, node.node_id
            )
            tof = channel.first_path.delay_s
            t_rx_local = node.radio.timestamp_arrival(
                t_tx_init_global + tof,
                rng,
                pulse_register=init_node.radio.pulse_register,
            )
            trace.record(
                t_tx_init_global + tof, node.node_id, "rx", init_airtime, "INIT"
            )
            node.account_rx(init_airtime)

            if active is not None and active.responder_dropped(
                ctx, responder_id
            ):
                # Injected dropout: INIT decoded, reply never keyed.
                continue

            assignment = self._assignment(responder_id)
            node.radio.set_pulse_register(assignment.register)
            hop_s = (
                self.defense.hop_offset_s(round_index, responder_id)
                if self.defense is not None
                else 0.0
            )
            nominal_local = (
                t_rx_local
                + self.reply_delay_s
                + assignment.extra_delay_s
                + hop_s
            )
            if active is not None:
                nominal_local += active.reply_delay_offset_s(
                    ctx, responder_id
                )
            actual_local = nominal_local
            if active is not None:
                actual_local = active.reply_time_override_s(
                    ctx, responder_id, nominal_local, hop_s
                )
            if self.compensate_tx_quantization:
                t_tx_local = actual_local
                t_claimed_local = nominal_local
            else:
                t_tx_local = node.radio.schedule_delayed_tx(actual_local)
                t_claimed_local = (
                    t_tx_local
                    if actual_local == nominal_local
                    # A hijacked radio transmits early but the payload
                    # still reports the *scheduled* instant (Cicada
                    # semantics): the timestamp field is written by the
                    # MAC from the programmed TX time, not measured.
                    else node.radio.schedule_delayed_tx(nominal_local)
                )
            extra_drift_ppm = (
                active.clock_drift_offset_ppm(ctx, responder_id)
                if active is not None
                else 0.0
            )
            if extra_drift_ppm != 0.0:
                # The responder's crystal walked off its nominal rate;
                # the initiator's CFO estimate (drawn from the nominal
                # clock below) goes stale, biasing the compensation.
                drifted = Clock(
                    drift_ppm=node.radio.clock.drift_ppm + extra_drift_ppm,
                    offset_s=node.radio.clock.offset_s,
                )
                t_tx_global = drifted.global_from_local(t_tx_local)
            else:
                t_tx_global = node.radio.clock.global_from_local(t_tx_local)

            messages[responder_id] = RespMessage(
                responder_id=responder_id,
                t_rx_local_s=t_rx_local,
                t_tx_local_s=t_claimed_local,
            )
            arrivals.append(
                SignalArrival(
                    channel=channel,
                    pulse=node.radio.transmit_pulse(),
                    tx_time_s=t_tx_global,
                    source_id=responder_id,
                )
            )
            trace.record(t_tx_global, node.node_id, "tx", resp_airtime, "RESP")
            node.account_tx(resp_airtime)

        # 3. The initiator captures one CIR of the superposition.
        if not arrivals:
            raise EmptyRoundError(
                truth=truth,
                fault_events=(
                    tuple(active.round_events) if active is not None else ()
                ),
                trace=trace,
            )
        try:
            capture = init_node.radio.capture_cir(
                arrivals,
                rng,
                cir_transform=(
                    active.cir_transform(ctx) if active is not None else None
                ),
            )
        except ValueError as error:
            # Nothing cleared the LDE threshold (deep fade / NLOS-killed
            # paths): physically this is a receive-window timeout, the
            # same observable outcome as an all-silent round.
            raise EmptyRoundError(
                truth=truth,
                fault_events=(
                    tuple(active.round_events) if active is not None else ()
                ),
                trace=trace,
            ) from error
        trace.record(
            min(a.first_path_arrival_s for a in arrivals),
            init_node.node_id,
            "rx",
            resp_airtime,
            "RESP(aggregate)",
        )
        init_node.account_rx(resp_airtime)

        # 4. Anchor distance from the first-arriving response's payload.
        anchor_id = min(
            range(len(arrivals)),
            key=lambda i: arrivals[i].first_path_arrival_s,
        )
        anchor_source = arrivals[anchor_id].source_id
        anchor_node = self.responders[anchor_source]
        anchor_message = messages[anchor_source]
        true_drift_ppm = anchor_node.radio.clock.relative_drift_ppm(
            init_node.radio.clock
        )
        estimated_drift_ppm = true_drift_ppm + float(
            rng.normal(0.0, self.cfo_error_ppm)
        )
        # ``capture.rx_timestamp_s`` marks the first path of the
        # earliest arrival — the anchor's reply *after* its RPM slot
        # delay — so the reply interval fed to TWR must contain that
        # same delay for it to cancel: the full ``t_tx - t_rx`` the
        # anchor reports.  The historical code subtracted the slot
        # delay from the reply side; with the anchor pinned to slot 0
        # (every fixed-window experiment) that is a no-op, and the
        # flag keeps those paths byte-identical.  Swarm rounds, whose
        # anchor may sit in any slot, take the corrected branch —
        # without it every distance in the round inherits a
        # ``slot * slot_duration * c / 2`` bias.  The secret time hop
        # needs no correction either way: it delays the arrival and
        # the reported reply time equally, so plain TWR cancels it.
        anchor_assignment = self._assignment(anchor_source)
        anchor_reply_tx_s = anchor_message.t_tx_local_s
        if not self.decode_with_anchor_slot:
            anchor_reply_tx_s -= anchor_assignment.extra_delay_s
        d_twr = twr_distance_compensated(
            t_tx_init_local,
            capture.rx_timestamp_s,
            anchor_message.t_rx_local_s,
            anchor_reply_tx_s,
            relative_drift_ppm=estimated_drift_ppm,
        )

        # Step 5 (detect/classify/decode) happens outside: the round is
        # paused at the classification boundary so a batch runner can
        # classify many rounds' CIRs in one engine pass.
        return PendingRound(
            capture=capture,
            d_twr_m=d_twr,
            truth=truth,
            trace=trace,
            round_index=round_index,
            active=active,
            t_tx_init_local_s=t_tx_init_local,
            anchor_source=anchor_source,
        )

    def finish_round(
        self,
        pending: PendingRound,
        classified,
    ) -> ConcurrentRoundResult:
        """Complete a :meth:`begin_round` round from its classification.

        ``classified`` is the list of
        :class:`~repro.core.pulse_id.ClassifiedResponse` for the pending
        round's CIR — from the serial classifier, or one slice of a
        :func:`repro.core.batch_id.classify_batch` result.  Decodes
        responder identities (step 5), matches outcomes against ground
        truth, and advances the medium's coherence interval exactly as
        :meth:`run_round` would have.
        """
        active = pending.active
        classified = list(classified)
        anchor_slot = 0
        if self.decode_with_anchor_slot and pending.anchor_source is not None:
            anchor_slot = self._assignment(pending.anchor_source).slot
        ranging = self.scheme.decode_responses(
            classified, pending.d_twr_m, anchor_slot=anchor_slot
        )

        defense_report: DefenseReport | None = None
        if self.defense is not None:
            ranging, defense_report = screen_round(
                self.defense,
                ranging=ranging,
                capture=pending.capture,
                t_tx_init_local_s=pending.t_tx_init_local_s,
                reply_delay_s=self.reply_delay_s,
                assignment_fn=self._assignment,
                round_index=pending.round_index,
                expected_responders=len(pending.truth),
            )

        fault_notes = (
            {
                rid: active.events_for(rid)
                for rid in pending.truth
                if active.events_for(rid)
            }
            if active is not None
            else {}
        )
        outcomes = self._match_outcomes(ranging, pending.truth, fault_notes)
        self.medium.new_coherence_interval()
        return ConcurrentRoundResult(
            capture=pending.capture,
            d_twr_m=pending.d_twr_m,
            classified=tuple(classified),
            ranging=ranging,
            outcomes=tuple(outcomes),
            trace=pending.trace,
            fault_events=(
                tuple(active.round_events) if active is not None else ()
            ),
            round_index=pending.round_index,
            defense=defense_report,
        )

    # -- resilience ---------------------------------------------------------

    def run_resilient_round(
        self,
        start_time_s: float | None = None,
        round_index: int = 0,
        *,
        quorum: int = 0,
        max_retries: int = 0,
        backoff_base_s: float = 0.0,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.0,
        retry_rng: np.random.Generator | None = None,
    ) -> ConcurrentRoundResult:
        """A round that degrades gracefully instead of raising.

        Runs :meth:`run_round`; when the round is empty (every responder
        silent) or detects fewer than ``quorum`` responders, it retries
        up to ``max_retries`` times with exponential backoff
        (``backoff_base_s * backoff_factor**attempt`` plus uniform
        jitter of up to ``backoff_jitter`` of that delay, drawn from
        ``retry_rng`` — never from the simulation's own stream).  After
        the retry budget is spent, the best attempt seen so far is
        returned; an all-silent final attempt yields a *partial* result
        (``capture is None``) carrying the fault annotations rather than
        an exception.
        """
        if quorum < 0:
            raise ValueError(f"quorum must be >= 0, got {quorum}")
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        best: ConcurrentRoundResult | None = None
        delay_s = 0.0
        time_s = start_time_s
        for attempt in range(max_retries + 1):
            if time_s is not None and delay_s > 0.0:
                time_s = time_s + delay_s
            try:
                result = self.run_round(
                    start_time_s=time_s,
                    round_index=round_index,
                    _attempt=attempt,
                )
            except EmptyRoundError as error:
                result = self._empty_round_result(
                    error, round_index=round_index, attempts=attempt + 1
                )
            else:
                result = dataclasses.replace(result, attempts=attempt + 1)
            if best is None or result.detection_count > best.detection_count:
                best = result
            if not result.partial and result.detection_count >= quorum:
                return result
            if attempt < max_retries:
                delay_s = backoff_base_s * (backoff_factor**attempt)
                if backoff_jitter > 0.0 and delay_s > 0.0:
                    jitter_rng = retry_rng or np.random.default_rng(
                        (round_index, attempt)
                    )
                    delay_s *= 1.0 + backoff_jitter * float(
                        jitter_rng.random()
                    )
        assert best is not None
        return dataclasses.replace(best, attempts=max_retries + 1)

    def _empty_round_result(
        self,
        error: EmptyRoundError,
        round_index: int,
        attempts: int,
    ) -> ConcurrentRoundResult:
        """A partial :class:`ConcurrentRoundResult` for an all-silent
        round: no capture, no detections, every responder a miss."""
        active = self._active_faults
        fault_notes = (
            {
                rid: active.events_for(rid)
                for rid in error.truth
                if active.events_for(rid)
            }
            if active is not None
            else {}
        )
        empty_ranging = RangingResult(
            d_twr_m=float("nan"),
            responses=(),
            distances_m=(),
            responder_ids=(),
        )
        outcomes = self._match_outcomes(
            empty_ranging, error.truth, fault_notes
        )
        self.medium.new_coherence_interval()
        return ConcurrentRoundResult(
            capture=None,
            d_twr_m=float("nan"),
            classified=(),
            ranging=empty_ranging,
            outcomes=tuple(outcomes),
            trace=error.trace,
            fault_events=error.fault_events,
            attempts=attempts,
            round_index=round_index,
        )

    def _match_outcomes(
        self,
        ranging: RangingResult,
        truth: Dict[int, float],
        fault_notes: Dict[int, tuple] | None = None,
    ) -> List[ResponderOutcome]:
        """Pair decoded (id, distance) tuples with ground truth.

        A decoded ID claims its ground-truth responder directly; decoded
        responses with unknown/duplicate IDs are matched to the remaining
        responder with the closest true distance (evaluation-only logic —
        a deployment would simply report the decoded IDs).
        ``fault_notes`` maps responder IDs to the fault kinds injected
        against them this round; matched outcomes carry them verbatim.
        """
        fault_notes = fault_notes or {}
        decoded: Dict[int, float] = {}
        leftovers: List[float] = []
        if self._scheme_ids is not None:
            # Decoded IDs are *scheme* IDs (0..capacity-1); translate
            # each back to the first unclaimed polled responder whose
            # global identity reduces to it.  A decoded ID no polled
            # responder carries is a mis-decode and matches by distance
            # below, exactly like an unknown ID on the default path.
            capacity = self.scheme.capacity
            candidates: Dict[int, List[int]] = {}
            for local in truth:
                candidates.setdefault(
                    self._scheme_ids[local] % capacity, []
                ).append(local)
            for rid, distance in zip(
                ranging.responder_ids, ranging.distances_m
            ):
                local_id = None
                if rid is not None:
                    for candidate in candidates.get(rid, ()):
                        if candidate not in decoded:
                            local_id = candidate
                            break
                if local_id is None:
                    leftovers.append(distance)
                else:
                    decoded[local_id] = distance
        else:
            for rid, distance in zip(
                ranging.responder_ids, ranging.distances_m
            ):
                if rid is not None and rid in truth and rid not in decoded:
                    decoded[rid] = distance
                else:
                    leftovers.append(distance)

        outcomes = []
        for responder_id, true_distance in truth.items():
            assignment = self._assignment(responder_id)
            if responder_id in decoded:
                outcomes.append(
                    ResponderOutcome(
                        responder_id=responder_id,
                        true_distance_m=true_distance,
                        assigned_slot=assignment.slot,
                        assigned_shape=assignment.shape_index,
                        estimated_distance_m=decoded[responder_id],
                        decoded_id=responder_id,
                        faults=fault_notes.get(responder_id, ()),
                    )
                )
                continue
            # Nearest leftover estimate, if any.
            estimate = None
            if leftovers:
                best = min(
                    range(len(leftovers)),
                    key=lambda i: abs(leftovers[i] - true_distance),
                )
                estimate = leftovers.pop(best)
            outcomes.append(
                ResponderOutcome(
                    responder_id=responder_id,
                    true_distance_m=true_distance,
                    assigned_slot=assignment.slot,
                    assigned_shape=assignment.shape_index,
                    estimated_distance_m=estimate,
                    decoded_id=None,
                    faults=fault_notes.get(responder_id, ()),
                )
            )
        return outcomes
