"""INIT and RESP message definitions.

Sizes follow a minimal IEEE 802.15.4 MAC frame: the INIT is a broadcast
with no ranging payload (14 bytes, which with the paper's PHY settings
makes the minimum response delay come out at the 178.5 us of Sect. III);
the RESP carries the two 40-bit timestamps of Fig. 3 plus the responder
identity.
"""

from __future__ import annotations

from dataclasses import dataclass

#: INIT frame: FCF(2) + seq(1) + PAN(2) + dst(2) + src(2) + type(1) +
#: round-id(2) + FCS(2) = 14 bytes.
INIT_PAYLOAD_BYTES = 14

#: RESP frame: FCF(2) + seq(1) + PAN(2) + dst(2) + src(2) + type(1) +
#: t_rx(5) + t_tx(5) + FCS(2) = 22 bytes.
RESP_PAYLOAD_BYTES = 22


@dataclass(frozen=True)
class InitMessage:
    """The broadcast that opens a ranging round."""

    initiator_id: int
    round_id: int = 0

    @property
    def size_bytes(self) -> int:
        return INIT_PAYLOAD_BYTES


@dataclass(frozen=True)
class RespMessage:
    """A responder's reply, carrying its local RX/TX timestamps.

    ``t_rx_local_s`` is when the responder received the INIT RMARKER
    and ``t_tx_local_s`` when its own RESP RMARKER left the antenna —
    the two quantities Eq. 2 needs from the responder side.
    """

    responder_id: int
    t_rx_local_s: float
    t_tx_local_s: float
    round_id: int = 0

    @property
    def size_bytes(self) -> int:
        return RESP_PAYLOAD_BYTES

    @property
    def reply_time_s(self) -> float:
        """The responder-measured reply duration (t_tx,i - t_rx,i)."""
        return self.t_tx_local_s - self.t_rx_local_s
