"""Per-shard engine: batched detection/classification with fallback.

Each shard owns one :class:`ShardEngine`.  The cached plans of
:mod:`repro.core.batch` carry *mutable* scratch buffers and are shared
per shape process-wide, so two shards running engine passes
concurrently (the service executes them on a thread pool) must never
share a plan — the shard engine therefore builds **private** plan
instances and hands them to :func:`~repro.core.batch.detect_batch` /
:func:`~repro.core.batch_id.classify_batch` explicitly.  Plans are
memoised per ``(CIR length, batch size)`` in a small per-shard table
(deadline flushes produce short batches, so a handful of sizes recur);
the heavy batch-independent artifacts underneath (template spectra,
correlation tables) still come from the process-wide cache, which is
lock-protected and immutable once built.

Degradation mirrors :mod:`repro.runtime`'s :class:`BatchTrial`
contract: if a batched pass raises, the group degrades to the serial
per-item engine (counted as a fallback), and an item that fails even
serially becomes a per-item error instead of poisoning its batch —
degraded throughput, never a lost request.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import resolve_backend
from repro.core.batch import BatchDetectorPlan, detect_batch
from repro.core.batch_id import BatchClassifierPlan, classify_batch
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.plan import detector_plan
from repro.core.pulse_id import PulseShapeClassifier
from repro.signal.templates import TemplateBank

__all__ = ["EngineConfig", "ShardEngine"]

#: Per-shard plan-table bound; beyond this the oldest entry is evicted
#: (a live stream with fixed CIR length rarely needs more than a few).
MAX_PRIVATE_PLANS = 32


class EngineConfig:
    """What the service ranges with: bank, mode, and detector knobs.

    Parameters
    ----------
    bank:
        The pulse-shape :class:`~repro.signal.templates.TemplateBank`.
        In ``detect`` mode it is the detector's template bank; in
        ``classify`` mode its index is the responder identity.
    sampling_period_s:
        Native CIR tap spacing shared by every request.
    mode:
        ``"detect"`` runs :func:`~repro.core.batch.detect_batch`;
        ``"classify"`` runs :func:`~repro.core.batch_id.classify_batch`.
    config:
        Detector knobs (:class:`SearchAndSubtractConfig`); defaults to
        the engine default.
    cir_length:
        Expected CIR length, used only to auto-size micro-batches
        (``batch_size="auto"``); requests of other lengths still serve
        (they form their own sub-batches).
    backend:
        Array-backend name for the shard plans' batched transforms
        (``"numpy"``/``"cupy"``/``"torch"``, see
        :mod:`repro.core.backend`); ``None`` follows the process
        default (``set_backend`` / ``REPRO_BACKEND`` / numpy).
        Validated eagerly so a service never boots on a backend it
        cannot run.
    """

    def __init__(
        self,
        bank: TemplateBank,
        sampling_period_s: float,
        mode: str = "detect",
        config: Optional[SearchAndSubtractConfig] = None,
        cir_length: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        if mode not in ("detect", "classify"):
            raise ValueError(
                f"mode must be 'detect' or 'classify', got {mode!r}"
            )
        if len(bank) < 1:
            raise ValueError("the service needs a non-empty template bank")
        self.bank = bank
        self.sampling_period_s = float(sampling_period_s)
        self.mode = mode
        self.config = config or SearchAndSubtractConfig()
        self.cir_length = None if cir_length is None else int(cir_length)
        self.backend = resolve_backend(backend).name


class ShardEngine:
    """One shard's private engine state plus the group-execute entry.

    :meth:`execute` is called on the service's thread pool (one
    in-flight call per shard at a time, by construction of the shard
    loop), so everything mutable here — the plan table, the plans'
    scratch buffers — is touched by at most one thread concurrently.
    """

    def __init__(self, engine: EngineConfig) -> None:
        self._engine = engine
        self._templates = list(engine.bank)
        self._plans: Dict[Tuple[int, int], object] = {}
        self._serial = None  # built lazily, only on fallback

    # -- private plans -------------------------------------------------------

    def _plan(self, cir_length: int, batch_size: int):
        """A private (uncached, shard-local) plan for one batch shape."""
        key = (cir_length, batch_size)
        plan = self._plans.get(key)
        if plan is None:
            engine = self._engine
            base = detector_plan(
                self._templates,
                cir_length,
                engine.config.upsample_factor,
                engine.sampling_period_s,
            )
            detector = BatchDetectorPlan(base, batch_size, backend=engine.backend)
            if engine.mode == "classify":
                plan = BatchClassifierPlan(detector, engine.bank)
            else:
                plan = detector
            if len(self._plans) >= MAX_PRIVATE_PLANS:
                self._plans.pop(next(iter(self._plans)))
            self._plans[key] = plan
        return plan

    def _serial_engine(self):
        """The per-item reference engine for the fallback path."""
        if self._serial is None:
            engine = self._engine
            if engine.mode == "classify":
                self._serial = PulseShapeClassifier(
                    engine.bank, engine.config
                )
            else:
                self._serial = SearchAndSubtract(engine.bank, engine.config)
        return self._serial

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        cirs: Sequence[np.ndarray],
        noise_stds: Sequence[float],
    ) -> Tuple[List[Tuple[bool, object]], int, int]:
        """Serve one flushed batch; returns ``(outcomes, passes, fallbacks)``.

        ``outcomes[k]`` is ``(True, responses)`` or ``(False, message)``
        for input ``k``, in input order.  Requests are grouped by CIR
        length (stacking requires equal lengths); each group is one
        batched engine pass, degrading to per-item serial execution if
        the pass raises.
        """
        groups: Dict[int, List[int]] = {}
        order: List[int] = []
        prepared: List[Optional[np.ndarray]] = []
        outcomes: List[Optional[Tuple[bool, object]]] = [None] * len(cirs)
        for k, cir in enumerate(cirs):
            try:
                array = np.asarray(cir, dtype=complex)
                if array.ndim != 1 or array.size < 1:
                    raise ValueError(
                        f"expected a non-empty 1-D CIR, got shape "
                        f"{array.shape}"
                    )
            except Exception as error:  # malformed payload: per-item error
                outcomes[k] = (False, f"bad CIR payload: {error!r}")
                prepared.append(None)
                continue
            prepared.append(array)
            length = int(array.shape[0])
            if length not in groups:
                groups[length] = []
                order.append(length)
            groups[length].append(k)

        passes = 0
        fallbacks = 0
        engine = self._engine
        for length in order:
            members = groups[length]
            stack = np.stack([prepared[k] for k in members])
            stds = [float(noise_stds[k]) for k in members]
            plan = self._plan(length, len(members))
            try:
                if engine.mode == "classify":
                    served = classify_batch(
                        stack,
                        engine.bank,
                        engine.sampling_period_s,
                        config=engine.config,
                        noise_std=stds,
                        plan=plan,
                    )
                else:
                    served = detect_batch(
                        stack,
                        self._templates,
                        engine.sampling_period_s,
                        config=engine.config,
                        noise_std=stds,
                        plan=plan,
                    )
                passes += 1
            except Exception:  # degrade the group, never lose requests
                fallbacks += 1
                served = None
            if served is not None:
                for k, responses in zip(members, served):
                    outcomes[k] = (True, responses)
                continue
            serial = self._serial_engine()
            for k in members:
                try:
                    if engine.mode == "classify":
                        responses = serial.classify(
                            prepared[k],
                            engine.sampling_period_s,
                            noise_std=float(noise_stds[k]),
                        )
                    else:
                        responses = serial.detect(
                            prepared[k],
                            engine.sampling_period_s,
                            noise_std=float(noise_stds[k]),
                        )
                    outcomes[k] = (True, responses)
                except Exception as error:
                    outcomes[k] = (False, repr(error))
        # Every input slot is filled: either a per-item payload error or
        # a group outcome above.
        return [outcome for outcome in outcomes], passes, fallbacks  # type: ignore[misc]
