"""Request/response types of the streaming ranging service.

A :class:`RangingRequest` is one initiator session's "please range this
CIR" message: the session identity (which pins the request to a shard
and gives it a total order), a per-session sequence number, the CIR
samples, and an optional latency budget.  The service answers with a
:class:`RangingResult` whose ``status`` is always one of a small closed
set — every accepted request reaches **exactly one** terminal status,
which is the invariant the loadgen accounting and the cancellation
property tests pin down:

``ok``
    Served: ``responses`` holds the detections (or classifications).
``shed``
    The request's deadline expired while it sat in the queue; the
    engine never ran it (timeout shedding under overload).
``cancelled``
    The service stopped without draining (or the caller cancelled the
    future) before the request was served.
``error``
    The engine raised for this specific request even on the serial
    fallback path; ``error`` carries the message.

A request the service *refuses to accept* (ingress queue at its
high-watermark) never gets a result: :meth:`RangingService.submit`
raises :class:`ServiceOverloadedError` carrying an explicit
``retry_after_s`` hint instead — backpressure is a contract, not a
crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

__all__ = [
    "RangingRequest",
    "RangingResult",
    "ServiceOverloadedError",
    "TERMINAL_STATUSES",
]

#: Every accepted request ends in exactly one of these.
TERMINAL_STATUSES = ("ok", "shed", "cancelled", "error")


@dataclass(frozen=True)
class RangingRequest:
    """One concurrent-ranging request from an initiator session.

    Attributes
    ----------
    session_id:
        Stable identity of the initiator session.  Requests of one
        session always map to the same shard, which is what gives a
        session FIFO service order.
    sequence:
        Monotonic per-session sequence number (caller-assigned); the
        service echoes it back so streams can be re-ordered/validated.
    cir:
        Complex CIR samples at the radio's native tap rate.
    noise_std:
        Noise standard deviation for the detector's early-stop gate.
    deadline_s:
        Optional per-request latency budget in seconds (relative to
        enqueue).  A request still queued when its budget expires is
        shed, not served.  ``None`` uses the service default.
    """

    session_id: str
    sequence: int
    cir: np.ndarray
    noise_std: float = 0.0
    deadline_s: Optional[float] = None


@dataclass
class RangingResult:
    """The service's answer to one :class:`RangingRequest`.

    ``responses`` holds :class:`~repro.core.detection.DetectedResponse`
    (detect mode) or :class:`~repro.core.pulse_id.ClassifiedResponse`
    (classify mode) entries, delay-ascending, exactly as the offline
    engines return them.  ``batch_size`` and ``flush_cause`` describe
    the micro-batch the request was served in (0 / ``""`` when it never
    reached the engine).
    """

    session_id: str
    sequence: int
    status: str
    responses: List[Any] = field(default_factory=list)
    latency_s: float = 0.0
    shard: int = -1
    batch_size: int = 0
    flush_cause: str = ""
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ServiceOverloadedError(RuntimeError):
    """Ingress rejected: the target shard's queue is at high-watermark.

    Carries an explicit ``retry_after_s`` hint (the service's configured
    backoff) so well-behaved clients can retry instead of hammering a
    saturated shard — the reject-with-retry-after backpressure contract.
    """

    def __init__(
        self, retry_after_s: float, shard: int, queue_depth: int
    ) -> None:
        super().__init__(
            f"shard {shard} ingress queue full ({queue_depth} pending); "
            f"retry after {retry_after_s:.3f}s"
        )
        self.retry_after_s = float(retry_after_s)
        self.shard = int(shard)
        self.queue_depth = int(queue_depth)
