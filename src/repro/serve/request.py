"""Request/outcome types and rejection contract of the ranging service.

A :class:`RangingRequest` is one initiator session's "please range this
CIR" message: the session identity (which pins the request to a shard
and gives it a total order), a per-session sequence number, the CIR
samples, an optional latency budget, and optional *annotations* — the
defense/fault metadata that must survive the trip onto the wire (see
:mod:`repro.serve.wire`).

The service answers with a :class:`RangingOutcome` — the **one**
response-shaped type of the serving stack.  Service results, loadgen
records, and live swarm-ingest rounds all use it (there used to be
three ad-hoc shapes); it is wire-serializable field-for-field, and its
``status`` is always one of a small closed set.  Every accepted request
reaches **exactly one** terminal status, which is the invariant the
loadgen accounting and the worker-kill tests pin down:

``ok``
    Served: ``responses`` holds the detections (or classifications).
``shed``
    The request's deadline expired while it sat in the queue; the
    engine never ran it (timeout shedding under overload).
``cancelled``
    The service stopped without draining (or the caller cancelled the
    future) before the request was served.
``error``
    The engine raised for this specific request even on the serial
    fallback path; ``error`` carries the message.

A request the service *refuses to accept* never gets an outcome — it
raises a :class:`ServiceRejectedError` subclass instead, and the two
refusal causes are deliberately distinct types with distinct metrics so
saturation and abuse cannot be confused:

:class:`ServiceOverloadedError`
    Backpressure: the target shard/worker is at its high-watermark
    (counted as ``serve.rejected``).
:class:`RateLimitedError`
    The per-session token bucket is empty — this session is sending
    faster than its configured rate (counted as ``serve.rate_limited``).

Both carry an explicit ``retry_after_s`` hint — backpressure is a
contract, not a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

__all__ = [
    "RangingRequest",
    "RangingOutcome",
    "RangingResult",
    "ServiceRejectedError",
    "ServiceOverloadedError",
    "RateLimitedError",
    "TERMINAL_STATUSES",
]

#: Every accepted request ends in exactly one of these.
TERMINAL_STATUSES = ("ok", "shed", "cancelled", "error")


@dataclass(frozen=True)
class RangingRequest:
    """One concurrent-ranging request from an initiator session.

    Attributes
    ----------
    session_id:
        Stable identity of the initiator session.  Requests of one
        session always map to the same shard (and, in a multi-process
        deployment, the same worker), which is what gives a session
        FIFO service order.
    sequence:
        Monotonic per-session sequence number (caller-assigned); the
        service echoes it back so streams can be re-ordered/validated.
    cir:
        Complex CIR samples at the radio's native tap rate.
    noise_std:
        Noise standard deviation for the detector's early-stop gate.
    deadline_s:
        Optional per-request latency budget in seconds (relative to
        enqueue).  A request still queued when its budget expires is
        shed, not served.  ``None`` uses the service default.
    annotations:
        Optional defense/fault metadata attached by the producer (the
        swarm ingest tags rounds with their contention plan; a session
        layer may attach its :class:`~repro.protocol.defense`
        verdicts).  Carried verbatim through the wire protocol and
        echoed — possibly extended by the service's own defense screen
        — on the outcome.
    """

    session_id: str
    sequence: int
    cir: np.ndarray
    noise_std: float = 0.0
    deadline_s: Optional[float] = None
    annotations: Optional[Mapping[str, Any]] = None


@dataclass
class RangingOutcome:
    """The single response-shaped type of the serving stack.

    ``responses`` holds :class:`~repro.core.detection.DetectedResponse`
    (detect mode) or :class:`~repro.core.pulse_id.ClassifiedResponse`
    (classify mode) entries, delay-ascending, exactly as the offline
    engines return them — including after a round trip through the
    wire codec (:mod:`repro.serve.wire` reconstructs them value-exact).
    ``batch_size`` and ``flush_cause`` describe the micro-batch the
    request was served in (0 / ``""`` when it never reached the
    engine); ``worker`` is the worker-process index that served it
    (-1 for the in-process service).  ``annotations`` echoes the
    request's defense/fault metadata, extended with the service-side
    defense screen's flags when one is configured.
    """

    session_id: str
    sequence: int
    status: str
    responses: List[Any] = field(default_factory=list)
    latency_s: float = 0.0
    shard: int = -1
    batch_size: int = 0
    flush_cause: str = ""
    error: Optional[str] = None
    worker: int = -1
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


#: Deprecated alias — the service's answer used to be named
#: ``RangingResult``; the unified type is :class:`RangingOutcome`.
RangingResult = RangingOutcome


class ServiceRejectedError(RuntimeError):
    """Base of the two ingress-refusal causes.

    Carries an explicit ``retry_after_s`` hint (the service's configured
    backoff) so well-behaved clients can retry instead of hammering a
    saturated shard, and a ``reason`` tag (``"backpressure"`` or
    ``"rate_limit"``) that survives the wire protocol's 429-style
    retry-after frames.
    """

    reason = "rejected"

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ServiceOverloadedError(ServiceRejectedError):
    """Ingress rejected: the target shard's queue is at high-watermark.

    This is *saturation* (the service as a whole cannot keep up), as
    opposed to :class:`RateLimitedError` (one session is over its
    budget); each increments its own counter so ``/metrics`` can tell
    the two apart.
    """

    reason = "backpressure"

    def __init__(
        self, retry_after_s: float, shard: int, queue_depth: int
    ) -> None:
        super().__init__(
            f"shard {shard} ingress queue full ({queue_depth} pending); "
            f"retry after {retry_after_s:.3f}s",
            retry_after_s,
        )
        self.shard = int(shard)
        self.queue_depth = int(queue_depth)


class RateLimitedError(ServiceRejectedError):
    """Ingress rejected: this session's token bucket is empty.

    Raised ahead of the shard queues, so an abusive session is bounced
    before it can occupy queue slots that well-behaved sessions need —
    the 429 to backpressure's 503.
    """

    reason = "rate_limit"

    def __init__(self, retry_after_s: float, session_id: str) -> None:
        super().__init__(
            f"session {session_id!r} exceeded its request rate; "
            f"retry after {retry_after_s:.3f}s",
            retry_after_s,
        )
        self.session_id = session_id
