"""Per-session token-bucket rate limiting ahead of the shard queues.

Backpressure (bounded shard queues) protects the *service* from the
aggregate; it cannot protect well-behaved sessions from one abusive
peer, because a single session hammering its shard fills queue slots
everyone on that shard needs.  The :class:`SessionRateLimiter` sits in
front of admission: each session gets its own token bucket (``burst``
capacity, refilled at ``rate_rps`` tokens per second), and a session
with an empty bucket is refused with an exact retry-after hint *before*
it can touch a queue.  The refusal is :class:`~repro.serve.request.
RateLimitedError` — deliberately a different type and a different
counter than queue backpressure, so ``/metrics`` distinguishes "the
service is saturated" from "someone is abusing it".

State is O(active sessions) with LRU eviction at ``max_sessions``: an
evicted session that returns simply starts with a fresh (full) bucket,
which errs on the side of admitting — correct for a limiter whose job
is abuse containment, not exact global accounting.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = ["RateLimitConfig", "SessionRateLimiter"]


@dataclass(frozen=True)
class RateLimitConfig:
    """Token-bucket parameters applied to every session uniformly.

    Attributes
    ----------
    rate_rps:
        Steady-state tokens (requests) per second per session.
    burst:
        Bucket capacity — how many requests a session may send
        back-to-back after an idle stretch.
    max_sessions:
        LRU bound on tracked buckets; the least recently *seen*
        session is evicted first.
    """

    rate_rps: float
    burst: float = 8.0
    max_sessions: int = 65536

    def __post_init__(self) -> None:
        if not isinstance(self.rate_rps, (int, float)) or isinstance(
            self.rate_rps, bool
        ):
            raise TypeError(
                f"rate_rps must be a number, got "
                f"{type(self.rate_rps).__name__}"
            )
        if self.rate_rps <= 0.0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.burst < 1.0:
            raise ValueError(
                f"burst must be >= 1 (a full bucket must admit at least "
                f"one request), got {self.burst}"
            )
        if self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )


class SessionRateLimiter:
    """LRU-bounded map of per-session token buckets.

    Not thread-safe by itself — callers are the asyncio event loop of a
    service/server, which serialises admission anyway.  ``clock`` is
    injectable (defaults to :func:`time.monotonic`) so tests can drive
    refill deterministically.
    """

    def __init__(
        self,
        config: RateLimitConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        #: session_id -> (tokens, last_refill_timestamp); insertion
        #: order doubles as recency order (move_to_end on every touch).
        self._buckets: "OrderedDict[str, Tuple[float, float]]" = (
            OrderedDict()
        )

    def check(self, session_id: str, now: Optional[float] = None) -> float:
        """Try to take one token for ``session_id``.

        Returns ``0.0`` when admitted (a token was consumed), otherwise
        the seconds until the bucket next holds a full token — the
        caller surfaces that as the 429's ``retry_after_s``.
        """
        if now is None:
            now = self._clock()
        config = self.config
        entry = self._buckets.get(session_id)
        if entry is None:
            tokens = config.burst
            if len(self._buckets) >= config.max_sessions:
                self._buckets.popitem(last=False)
        else:
            tokens, last = entry
            tokens = min(
                config.burst, tokens + (now - last) * config.rate_rps
            )
        if tokens >= 1.0:
            self._buckets[session_id] = (tokens - 1.0, now)
            self._buckets.move_to_end(session_id)
            return 0.0
        self._buckets[session_id] = (tokens, now)
        self._buckets.move_to_end(session_id)
        return (1.0 - tokens) / config.rate_rps

    def __len__(self) -> int:
        return len(self._buckets)
