"""Load generator: replay CIR streams against the ranging service.

``python -m repro.serve.loadgen --sessions 1000 --rate 2000 --duration 60``
stands up a deployment through
:class:`~repro.serve.client.AsyncRangingClient` (in-process by default;
``--workers K`` forks a multi-process
:class:`~repro.serve.supervisor.RangingServer`; ``--rate-limit R`` arms
the per-session token bucket), replays CIR ranging requests from many
concurrent initiator sessions at a configurable aggregate rate, and
reports a latency/throughput/accounting summary.  Two replay sources:

``synthetic``
    A pool of netsim-style CIRs (bank pulses at fractional positions
    plus complex white noise — the same construction the engine property
    tests use), cheap to build at any length and count.
``fig8``
    Rounds of the paper's Fig. 8 nine-responder experiment
    (:func:`repro.experiments.fig8_combined.build_session`), i.e. real
    experiment-generated captures.

Each session is closed-loop (it awaits one result before sending its
next request) but paced so the fleet approaches the requested aggregate
rate.  The report enforces the service's exactly-once accounting: every
sent request is acknowledged as exactly one of ok / shed / error /
cancelled / rejected, and ``accounting_ok`` is the zero-lost /
zero-duplicated verdict the acceptance soak checks.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtractConfig
from repro.serve.client import AsyncRangingClient
from repro.serve.engine import EngineConfig
from repro.serve.http import MetricsServer
from repro.serve.ratelimit import RateLimitConfig
from repro.serve.request import (
    RangingOutcome,
    RangingRequest,
    ServiceRejectedError,
)
from repro.serve.service import ServeConfig
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "synthetic_pool",
    "fig8_pool",
    "run_load",
    "add_arguments",
    "run_from_args",
    "main",
]

_NOISE_STD = 0.01


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run: how many sessions, how fast, for how long."""

    sessions: int = 100
    rate: float = 500.0  # aggregate requests/second across all sessions
    duration_s: float = 10.0
    deadline_s: Optional[float] = None  # per-request budget (None: default)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}"
            )


@dataclass
class LoadgenReport:
    """What a load run produced, with the accounting verdict.

    Records are tallied from :class:`RangingOutcome` objects (and the
    two rejection exception types) by :meth:`record` — the loadgen has
    no response shape of its own.
    """

    sent: int = 0
    ok: int = 0
    shed: int = 0
    error: int = 0
    cancelled: int = 0
    rejected: int = 0
    rate_limited: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    def record(self, outcome: RangingOutcome) -> None:
        """Tally one terminal outcome."""
        if outcome.status == "ok":
            self.ok += 1
            self.latencies_s.append(outcome.latency_s)
        elif outcome.status == "shed":
            self.shed += 1
        elif outcome.status == "cancelled":
            self.cancelled += 1
        else:
            self.error += 1

    def record_rejection(self, error: ServiceRejectedError) -> None:
        """Tally one admission refusal (backpressure vs rate limit)."""
        if error.reason == "rate_limit":
            self.rate_limited += 1
        else:
            self.rejected += 1

    @property
    def accounted(self) -> int:
        return (
            self.ok
            + self.shed
            + self.error
            + self.cancelled
            + self.rejected
            + self.rate_limited
        )

    @property
    def accounting_ok(self) -> bool:
        """Zero lost, zero duplicated: every sent request acked once."""
        return self.sent == self.accounted

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
        return ordered[rank - 1]

    def as_dict(self) -> Dict[str, object]:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "error": self.error,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "rate_limited": self.rate_limited,
            "accounted": self.accounted,
            "accounting_ok": self.accounting_ok,
            "duration_s": self.duration_s,
            "throughput_rps": (
                self.ok / self.duration_s if self.duration_s > 0 else 0.0
            ),
            "latency_p50_s": self.latency_quantile(0.5),
            "latency_p95_s": self.latency_quantile(0.95),
            "latency_p99_s": self.latency_quantile(0.99),
            "latency_max_s": (
                max(self.latencies_s) if self.latencies_s else float("nan")
            ),
        }


# -- CIR pools ---------------------------------------------------------------


def synthetic_pool(
    bank: TemplateBank,
    pool_size: int = 32,
    cir_length: int = 509,
    max_responses: int = 3,
    seed: int = 0,
) -> List[Tuple[np.ndarray, float]]:
    """Netsim-style CIRs: bank pulses at fractional positions + noise."""
    rng = np.random.default_rng(seed)
    templates = [pulse.samples.astype(complex) for pulse in bank]
    pool: List[Tuple[np.ndarray, float]] = []
    for _ in range(pool_size):
        cir = np.zeros(cir_length, dtype=complex)
        for _ in range(int(rng.integers(1, max_responses + 1))):
            position = float(rng.uniform(40.0, cir_length - 40.0))
            amplitude = rng.uniform(0.3, 1.0) * np.exp(
                1j * rng.uniform(0.0, 2.0 * np.pi)
            )
            template = templates[int(rng.integers(len(templates)))]
            place_pulse(cir, template, position, amplitude)
        cir += _NOISE_STD * (
            rng.standard_normal(cir_length)
            + 1j * rng.standard_normal(cir_length)
        ) / np.sqrt(2.0)
        pool.append((cir, _NOISE_STD))
    return pool


def fig8_pool(
    pool_size: int = 8, seed: int = 31
) -> List[Tuple[np.ndarray, float]]:
    """Captures from the paper's Fig. 8 nine-responder experiment."""
    from repro.experiments.fig8_combined import build_session

    pool: List[Tuple[np.ndarray, float]] = []
    for i in range(pool_size):
        session = build_session(seed=seed + i)
        pending = session.begin_round()
        pool.append((pending.cir, pending.noise_std))
    return pool


# -- replay ------------------------------------------------------------------


async def _session_task(
    service,
    session_id: str,
    pool: Sequence[Tuple[np.ndarray, float]],
    start_offset: float,
    interval: float,
    stop_at: float,
    deadline_s: Optional[float],
    report: LoadgenReport,
    seed: int,
) -> None:
    loop = asyncio.get_running_loop()
    rng = random.Random(seed)
    next_at = loop.time() + start_offset
    sequence = 0
    while next_at < stop_at:
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        cir, noise_std = pool[rng.randrange(len(pool))]
        request = RangingRequest(
            session_id=session_id,
            sequence=sequence,
            cir=cir,
            noise_std=noise_std,
            deadline_s=deadline_s,
        )
        sequence += 1
        report.sent += 1
        try:
            result = await service.submit(request)
        except ServiceRejectedError as error:
            # Rejected (backpressure or rate limit): honour the
            # retry-after hint before the next attempt instead of
            # hammering the saturated shard / empty bucket.
            report.record_rejection(error)
            next_at = max(
                next_at + interval, loop.time() + error.retry_after_s
            )
            continue
        report.record(result)
        next_at += interval


async def run_load(
    service,
    pool: Sequence[Tuple[np.ndarray, float]],
    config: LoadgenConfig,
) -> LoadgenReport:
    """Replay ``pool`` against a started deployment; returns the report.

    ``service`` is anything with an async ``submit`` —
    :class:`~repro.serve.client.AsyncRangingClient` (the normal entry),
    a :class:`~repro.serve.service.RangingService`, or a
    :class:`~repro.serve.supervisor.RangingServer`.
    """
    if not pool:
        raise ValueError("the CIR pool is empty")
    report = LoadgenReport()
    loop = asyncio.get_running_loop()
    interval = config.sessions / config.rate
    started = loop.time()
    stop_at = started + config.duration_s
    tasks = [
        asyncio.ensure_future(
            _session_task(
                service,
                f"session-{i:05d}",
                pool,
                start_offset=i / config.rate,  # stagger arrivals evenly
                interval=interval,
                stop_at=stop_at,
                deadline_s=config.deadline_s,
                report=report,
                seed=config.seed * 1_000_003 + i,
            )
        )
        for i in range(config.sessions)
    ]
    await asyncio.gather(*tasks)
    report.duration_s = loop.time() - started
    return report


# -- CLI ---------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Register the load-replay flags (shared by ``repro serve``/``loadgen``)."""
    parser.add_argument("--sessions", type=int, default=100)
    parser.add_argument(
        "--rate", type=float, default=500.0,
        help="aggregate requests/second across all sessions",
    )
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument(
        "--cir-source", choices=("synthetic", "fig8"), default="synthetic"
    )
    parser.add_argument(
        "--cir-length", type=int, default=509,
        help="CIR length for the synthetic pool",
    )
    parser.add_argument("--pool-size", type=int, default=32)
    parser.add_argument(
        "--mode", choices=("detect", "classify"), default="detect"
    )
    parser.add_argument("--templates", type=int, default=3)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0: in-process service, >=1: forked "
        "multi-process RangingServer)",
    )
    parser.add_argument(
        "--rate-limit", type=float, default=None,
        help="per-session token-bucket rate in requests/second "
        "(default: no rate limiting)",
    )
    parser.add_argument(
        "--rate-limit-burst", type=float, default=8.0,
        help="token-bucket burst capacity per session",
    )
    parser.add_argument(
        "--backend", default=None,
        help="array backend override for the engine (e.g. numpy)",
    )
    parser.add_argument(
        "--batch-size", default="auto",
        help="micro-batch size per shard (int or 'auto')",
    )
    parser.add_argument(
        "--batch-delay-ms", type=float, default=5.0,
        help="deadline-flush budget in milliseconds",
    )
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request latency budget (default: service default)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--port", type=int, default=None,
        help="also serve /metrics and /healthz on this port (0=ephemeral)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report to this path"
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    return add_arguments(
        argparse.ArgumentParser(
            prog="repro-loadgen",
            description=(
                "Replay CIR ranging streams against an in-process "
                "repro.serve service."
            ),
        )
    )


async def _amain(args: argparse.Namespace) -> Dict[str, object]:
    bank = TemplateBank.paper_bank(args.templates)
    if args.cir_source == "fig8":
        pool = fig8_pool(pool_size=args.pool_size, seed=args.seed + 31)
        cir_length = len(pool[0][0])
    else:
        pool = synthetic_pool(
            bank,
            pool_size=args.pool_size,
            cir_length=args.cir_length,
            seed=args.seed,
        )
        cir_length = args.cir_length
    batch_size = (
        args.batch_size
        if args.batch_size == "auto"
        else int(args.batch_size)
    )
    config = ServeConfig(
        n_shards=args.shards,
        batch_size=batch_size,
        max_batch_delay_s=args.batch_delay_ms / 1000.0,
        queue_depth=args.queue_depth,
        engine=EngineConfig(
            bank,
            CIR_SAMPLING_PERIOD_S,
            mode=args.mode,
            config=SearchAndSubtractConfig(),
            cir_length=cir_length,
        ),
        workers=args.workers,
        rate_limit=(
            None
            if args.rate_limit is None
            else RateLimitConfig(
                args.rate_limit, burst=args.rate_limit_burst
            )
        ),
        backend=args.backend,
    )
    client = AsyncRangingClient(config)
    await client.start()
    endpoint = None
    if args.port is not None:
        endpoint = await MetricsServer(
            client.deployment, port=args.port
        ).start()
        print(
            f"metrics: http://127.0.0.1:{endpoint.port}/metrics",
            file=sys.stderr,
        )
    try:
        report = await run_load(
            client,
            pool,
            LoadgenConfig(
                sessions=args.sessions,
                rate=args.rate,
                duration_s=args.duration,
                deadline_s=(
                    None
                    if args.deadline_ms is None
                    else args.deadline_ms / 1000.0
                ),
                seed=args.seed,
            ),
        )
        counters = client.metrics.snapshot()["counters"]
    finally:
        if endpoint is not None:
            await endpoint.stop()
        await client.close(drain=True)

    def _count(name: str) -> float:
        # In-process metrics live under serve.*; the multi-process
        # parent adds server.* — sum both so one summary shape covers
        # both deployments.
        return counters.get(f"serve.{name}", 0) + counters.get(
            f"server.{name}", 0
        )

    summary = report.as_dict()
    summary["config"] = {
        "sessions": args.sessions,
        "rate": args.rate,
        "duration_s": args.duration,
        "cir_source": args.cir_source,
        "cir_length": cir_length,
        "mode": args.mode,
        "shards": args.shards,
        "workers": args.workers,
        "rate_limit_rps": args.rate_limit,
        "backend": args.backend,
        "batch_size": getattr(
            client.deployment, "batch_size", batch_size
        ),
        "batch_delay_ms": args.batch_delay_ms,
        "queue_depth": args.queue_depth,
    }
    summary["metrics"] = {
        "rejected": _count("rejected"),
        "rate_limited": _count("rate_limited"),
        "shed": _count("shed"),
        "flush_full": _count("flush_full"),
        "flush_deadline": _count("flush_deadline"),
        "batch_fallbacks": _count("batch_fallbacks"),
        "worker_restarts": _count("worker_restarts"),
    }
    return summary


def run_from_args(args: argparse.Namespace) -> int:
    """Execute one parsed load run; exit code reflects the accounting."""
    summary = asyncio.run(_amain(args))
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0 if summary["accounting_ok"] else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
