"""Live observability endpoint: ``/metrics`` and ``/healthz``.

A deliberately tiny HTTP/1.1 responder on :func:`asyncio.start_server`
— no web framework, no threads, same event loop as the service, so a
scrape observes a consistent snapshot of the registry.  ``/metrics``
serves the registry in Prometheus text exposition format
(:meth:`~repro.runtime.metrics.MetricsRegistry.render_prometheus`);
``/healthz`` serves a small JSON liveness document from the
deployment's ``healthz()``.  Any deployment with a ``metrics`` registry
and a ``healthz()`` method works — the in-process
:class:`~repro.serve.service.RangingService` and the multi-process
:class:`~repro.serve.supervisor.RangingServer` (whose ``metrics``
property merges parent and worker snapshots per scrape) are served
identically.

Scrape-rate safety is a stated requirement: histogram snapshots are
bounded reservoirs (see :class:`~repro.runtime.metrics.Histogram`), so
rendering is O(reservoir) per histogram and a 1 Hz scraper costs the
service microseconds, not copies of full sample lists.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

__all__ = ["MetricsServer"]

_MAX_REQUEST_BYTES = 8192


class MetricsServer:
    """Serve ``/metrics`` and ``/healthz`` for one deployment.

    ``service`` is any object exposing a ``metrics`` registry and a
    ``healthz()`` dict — ``RangingService`` or ``RangingServer``.
    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`), which is what the tests and the loadgen use.
    """

    def __init__(
        self,
        service: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "MetricsServer":
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                return
            # Drain (and ignore) headers up to the blank line.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?")[0] if len(parts) > 1 else ""
            status, content_type, body = self._route(method, path)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str):
        if method not in ("GET", "HEAD"):
            return "405 Method Not Allowed", "text/plain; charset=utf-8", (
                "method not allowed\n"
            )
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                self.service.metrics.render_prometheus(),
            )
        if path == "/healthz":
            return (
                "200 OK",
                "application/json; charset=utf-8",
                json.dumps(self.service.healthz()) + "\n",
            )
        return "404 Not Found", "text/plain; charset=utf-8", "not found\n"
