"""repro.serve — the streaming concurrent-ranging service.

The offline experiments answer "what does the paper's scheme do?"; this
package answers "can the implementation hold up a live workload?".  It
turns the batched detection/classification engines into a deployable
serving stack:

* :class:`RangingClient` / :class:`AsyncRangingClient` — **the public
  entry point**: hand either a :class:`ServeConfig` and it builds the
  right deployment (`workers == 0` → in-process, `workers >= 1` →
  multi-process) behind one submit surface with retry-after-honouring
  helpers.
* :class:`ServeConfig` — the one dataclass describing a deployment:
  shards, workers, queue depths, deadlines, rate limits, backend,
  defense; everything validates eagerly.
* :class:`RangingService` — the in-process core: sharded worker pool
  with per-session FIFO ordering, dynamic micro-batching (flush on
  batch-full or deadline), bounded ingress queues with
  reject-with-retry-after backpressure, per-session token-bucket rate
  limiting, per-request deadline shedding, and serial-engine fallback.
* :class:`RangingServer` — the multi-process deployment: K forked
  workers (each a full ``RangingService``) behind the length-prefixed
  wire protocol of :mod:`repro.serve.wire`, with heartbeat supervision,
  restart + request re-homing, and merged parent/worker metrics.
* :class:`RangingOutcome` — the single response-shaped type: service
  results, loadgen records, and live swarm rounds all use it, and it is
  wire-serializable field-for-field.
* :class:`MetricsServer` — live ``/metrics`` (Prometheus text format)
  and ``/healthz`` endpoints over either deployment.
* :mod:`repro.serve.loadgen` — replay synthetic or Fig. 8 CIR streams
  at a configured rate and verify the exactly-once accounting.

The engine passes run on worker threads (the FFTs release the GIL), but
all bookkeeping stays on the event loop — the service is data-race-free
by construction rather than by locking.
"""

from repro.serve.batcher import STOP, MicroBatcher
from repro.serve.client import AsyncRangingClient, RangingClient
from repro.serve.engine import EngineConfig, ShardEngine
from repro.serve.http import MetricsServer
from repro.serve.ratelimit import RateLimitConfig, SessionRateLimiter
from repro.serve.request import (
    RangingOutcome,
    RangingRequest,
    RangingResult,
    RateLimitedError,
    ServiceOverloadedError,
    ServiceRejectedError,
    TERMINAL_STATUSES,
)
from repro.serve.service import RangingService, ServeConfig
from repro.serve.supervisor import RangingServer

__all__ = [
    "STOP",
    "MicroBatcher",
    "AsyncRangingClient",
    "RangingClient",
    "EngineConfig",
    "ShardEngine",
    "MetricsServer",
    "RateLimitConfig",
    "SessionRateLimiter",
    "RangingOutcome",
    "RangingRequest",
    "RangingResult",
    "RateLimitedError",
    "ServiceOverloadedError",
    "ServiceRejectedError",
    "TERMINAL_STATUSES",
    "RangingService",
    "ServeConfig",
    "RangingServer",
]
