"""repro.serve — the streaming concurrent-ranging service.

The offline experiments answer "what does the paper's scheme do?"; this
package answers "can the implementation hold up a live workload?".  It
turns the batched detection/classification engines into a long-running
asyncio service with the standard inference-serving machinery:

* :class:`RangingService` — sharded worker pool with per-session FIFO
  ordering, dynamic micro-batching (flush on batch-full or deadline),
  bounded ingress queues with reject-with-retry-after backpressure,
  per-request deadline shedding, and serial-engine fallback.
* :class:`MicroBatcher` — the size-or-deadline batch gatherer.
* :class:`MetricsServer` — live ``/metrics`` (Prometheus text format)
  and ``/healthz`` endpoints.
* :mod:`repro.serve.loadgen` — replay synthetic or Fig. 8 CIR streams
  at a configured rate and verify the exactly-once accounting.

The engine passes run on worker threads (the FFTs release the GIL), but
all bookkeeping stays on the event loop — the service is data-race-free
by construction rather than by locking.
"""

from repro.serve.batcher import STOP, MicroBatcher
from repro.serve.engine import EngineConfig, ShardEngine
from repro.serve.http import MetricsServer
from repro.serve.request import (
    RangingRequest,
    RangingResult,
    ServiceOverloadedError,
    TERMINAL_STATUSES,
)
from repro.serve.service import RangingService, ServeConfig

__all__ = [
    "STOP",
    "MicroBatcher",
    "EngineConfig",
    "ShardEngine",
    "MetricsServer",
    "RangingRequest",
    "RangingResult",
    "ServiceOverloadedError",
    "TERMINAL_STATUSES",
    "RangingService",
    "ServeConfig",
]
