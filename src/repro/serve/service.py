"""The streaming concurrent-ranging service.

:class:`RangingService` is the long-running asyncio core that turns the
repository's offline engines into an online capability: thousands of
initiator sessions push :class:`~repro.serve.request.RangingRequest`
messages in, and a sharded worker pool funnels them through the
dynamic micro-batcher onto the batched detection/classification
engines.  The design in one paragraph:

* **Sharding** — ``session_id`` hashes to one of ``n_shards`` shards
  (stable CRC-32), each with its own bounded ingress queue, micro-
  batcher, and private engine plans.  A session's requests are served
  strictly FIFO because its shard consumes them in arrival order, one
  batch at a time.
* **Micro-batching** — each shard gathers requests until batch-full or
  deadline (:class:`~repro.serve.batcher.MicroBatcher`), then runs one
  batched engine pass on the service's thread pool; NumPy/SciPy release
  the GIL in the FFTs, so shards genuinely overlap.
* **Backpressure** — an ingress queue at its high-watermark rejects new
  requests with an explicit retry-after hint
  (:class:`~repro.serve.request.ServiceOverloadedError`) instead of
  buffering without bound; a request whose deadline expires while
  queued is shed without running the engine.
* **Graceful degradation** — a failing batched pass degrades to the
  serial per-item engine (never a lost request), mirroring the
  :class:`~repro.runtime.executor.BatchTrial` fallback contract.
* **Observability** — every decision increments the service's
  :class:`~repro.runtime.metrics.MetricsRegistry` (queue depth,
  batch-size distribution, flush causes, latency quantiles, shed and
  reject counts); :mod:`repro.serve.http` serves it as a live
  ``/metrics`` endpoint.

All bookkeeping runs on the event-loop thread; worker threads only
execute the (self-contained, per-shard) engine pass — so the metrics
registry and the completion bookkeeping never race.
"""

from __future__ import annotations

import asyncio
import warnings
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Union

from repro.constants import CIR_LENGTH_PRF64
from repro.core.backend import resolve_backend
from repro.protocol.defense import DefensePlan, screen_responses
from repro.runtime.executor import choose_batch_size
from repro.runtime.metrics import MetricsRegistry
from repro.serve.batcher import STOP, MicroBatcher
from repro.serve.engine import EngineConfig, ShardEngine
from repro.serve.ratelimit import RateLimitConfig, SessionRateLimiter
from repro.serve.request import (
    RangingOutcome,
    RangingRequest,
    RateLimitedError,
    ServiceOverloadedError,
)
from repro.serve.wire import DEFAULT_MAX_FRAME_BYTES

__all__ = ["ServeConfig", "RangingService"]


@dataclass(frozen=True)
class ServeConfig:
    """**The** deployment configuration of the serving stack.

    One dataclass describes everything from a single in-process
    :class:`RangingService` to a supervised multi-process
    :class:`~repro.serve.supervisor.RangingServer` fleet — the
    :class:`~repro.serve.client.RangingClient` picks which to build
    from ``workers`` alone.  Everything validates eagerly in
    ``__post_init__`` so a bad deployment fails at configuration time,
    not mid-traffic.

    Parameters
    ----------
    n_shards:
        Worker shards (and engine threads) *per process*.  Sessions
        hash across them; more shards raise engine parallelism and
        reduce head-of-line blocking between sessions.
    batch_size:
        Micro-batch flush threshold per shard, or ``"auto"`` to size it
        from the engine workload shape via
        :func:`repro.runtime.executor.choose_batch_size`.
    max_batch_delay_s:
        Deadline-flush budget: the longest a pending request waits for
        its batch to fill before the shard flushes short.
    queue_depth:
        Per-shard ingress high-watermark.  A submit that would exceed
        it is rejected with ``retry_after_s`` — bounded memory and an
        explicit backpressure signal instead of unbounded buffering.
    default_deadline_s:
        Latency budget applied to requests that carry none.  ``None``
        disables shedding for such requests.
    retry_after_s:
        The hint carried by backpressure rejections (rate-limit
        rejections compute their own exact hint).
    engine:
        The :class:`~repro.serve.engine.EngineConfig` to range with —
        what used to be ``RangingService``'s separate first argument.
        Required to *build* a deployment; optional here so behaviour
        knobs can be described before the bank exists.
    workers:
        Worker *processes*.  ``0`` (default) runs the classic
        in-process service; ``>= 1`` means a multi-process
        :class:`~repro.serve.supervisor.RangingServer` deployment with
        this many forked workers, each running its own
        ``RangingService`` with ``n_shards`` shards.
    rate_limit:
        Optional per-session token bucket
        (:class:`~repro.serve.ratelimit.RateLimitConfig`) enforced
        ahead of the shard queues; ``None`` disables rate limiting.
    backend:
        Array-backend override for the engine (``"numpy"`` etc.);
        ``None`` keeps the engine's own choice.  Validated eagerly.
    defense:
        Optional :class:`~repro.protocol.defense.DefensePlan` whose
        CIR-only anomaly checks *annotate* served outcomes
        (``annotations["defense"]``) — never mutate them, so streaming
        results stay byte-equal to offline runs.
    heartbeat_interval_s / heartbeat_timeout_s:
        Worker liveness cadence (multi-process only): workers beacon
        every interval; a worker silent past the timeout is killed and
        restarted with its pending requests re-homed.
    max_frame_bytes:
        Wire-protocol frame-size bound (multi-process only).
    """

    n_shards: int = 4
    batch_size: Union[int, str] = "auto"
    max_batch_delay_s: float = 0.005
    queue_depth: int = 256
    default_deadline_s: Optional[float] = 1.0
    retry_after_s: float = 0.05
    engine: Optional[EngineConfig] = None
    workers: int = 0
    rate_limit: Optional[RateLimitConfig] = None
    backend: Optional[str] = None
    defense: Optional[DefensePlan] = None
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if isinstance(self.batch_size, str):
            if self.batch_size != "auto":
                raise ValueError(
                    "batch_size must be an int >= 1 or 'auto', got "
                    f"{self.batch_size!r}"
                )
        elif self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.max_batch_delay_s < 0:
            raise ValueError(
                "max_batch_delay_s must be >= 0, got "
                f"{self.max_batch_delay_s}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                "default_deadline_s must be positive or None, got "
                f"{self.default_deadline_s}"
            )
        if self.retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {self.retry_after_s}"
            )
        if self.engine is not None and not isinstance(
            self.engine, EngineConfig
        ):
            raise TypeError(
                "engine must be an EngineConfig or None, got "
                f"{type(self.engine).__name__}"
            )
        if not isinstance(self.workers, int) or isinstance(
            self.workers, bool
        ):
            raise TypeError(
                f"workers must be an int, got {type(self.workers).__name__}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.rate_limit is not None and not isinstance(
            self.rate_limit, RateLimitConfig
        ):
            raise TypeError(
                "rate_limit must be a RateLimitConfig or None, got "
                f"{type(self.rate_limit).__name__}"
            )
        if self.backend is not None:
            resolve_backend(self.backend)  # raises if unknown/unavailable
        if self.defense is not None and not isinstance(
            self.defense, DefensePlan
        ):
            raise TypeError(
                "defense must be a DefensePlan or None, got "
                f"{type(self.defense).__name__}"
            )
        if not self.heartbeat_interval_s > 0:
            raise ValueError(
                "heartbeat_interval_s must be positive, got "
                f"{self.heartbeat_interval_s}"
            )
        if not self.heartbeat_timeout_s > self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s, "
                f"got {self.heartbeat_timeout_s} <= "
                f"{self.heartbeat_interval_s}"
            )
        if self.max_frame_bytes < 1024:
            raise ValueError(
                "max_frame_bytes must be >= 1024, got "
                f"{self.max_frame_bytes}"
            )

    def resolved_engine(self) -> EngineConfig:
        """The engine to deploy, with the ``backend`` override applied."""
        if self.engine is None:
            raise ValueError(
                "ServeConfig.engine is required to build a deployment "
                "(pass engine=EngineConfig(...))"
            )
        if self.backend is None or self.backend == self.engine.backend:
            return self.engine
        return EngineConfig(
            bank=self.engine.bank,
            sampling_period_s=self.engine.sampling_period_s,
            mode=self.engine.mode,
            config=self.engine.config,
            cir_length=self.engine.cir_length,
            backend=self.backend,
        )

    def worker_local(self) -> "ServeConfig":
        """This config as seen *inside* one worker process.

        Workers run plain in-process services: no nested workers, and
        no rate limiting (admission control lives in the parent, which
        sees every session; a worker sees only its slice).
        """
        return replace(self, workers=0, rate_limit=None)


@dataclass
class _Envelope:
    """One in-flight request plus its service-side bookkeeping."""

    request: RangingRequest
    future: "asyncio.Future[RangingOutcome]"
    enqueued_at: float
    deadline: Optional[float]  # absolute loop time, None = never shed
    shard: int

    def annotations(self) -> Dict[str, Any]:
        """The request's annotations, copied for the outcome to own."""
        return (
            dict(self.request.annotations)
            if self.request.annotations
            else {}
        )


def _shard_of(session_id: str, n_shards: int) -> int:
    """Stable session → shard mapping (CRC-32 of the UTF-8 identity)."""
    return zlib.crc32(session_id.encode("utf-8")) % n_shards


class RangingService:
    """Micro-batching, sharded, backpressured ranging service.

    Build one with :meth:`build` from a :class:`ServeConfig` whose
    ``engine`` is set::

        service = RangingService.build(
            ServeConfig(engine=EngineConfig(bank, period), n_shards=4)
        )

    The pre-redesign two-argument signature
    ``RangingService(engine_config, serve_config)`` still works behind
    a :class:`DeprecationWarning` shim.  For ``workers >= 1`` use
    :class:`~repro.serve.supervisor.RangingServer` (or, better, the
    :class:`~repro.serve.client.RangingClient`, which picks for you).
    """

    def __init__(
        self,
        engine: Union[EngineConfig, ServeConfig, None] = None,
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if isinstance(engine, EngineConfig):
            warnings.warn(
                "RangingService(engine, config) is deprecated; use "
                "RangingService.build(ServeConfig(engine=..., ...))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = replace(config or ServeConfig(), engine=engine)
        elif isinstance(engine, ServeConfig):
            if config is not None:
                raise TypeError(
                    "pass either a ServeConfig or the deprecated "
                    "(EngineConfig, ServeConfig) pair, not two configs"
                )
            config = engine
        elif engine is not None:
            raise TypeError(
                "first argument must be a ServeConfig (or, deprecated, "
                f"an EngineConfig), got {type(engine).__name__}"
            )
        elif config is None:
            raise TypeError("RangingService needs a ServeConfig")
        if config.workers >= 1:
            raise ValueError(
                f"ServeConfig.workers={config.workers} describes a "
                "multi-process deployment; build a RangingServer (or a "
                "RangingClient) instead of an in-process RangingService"
            )
        self.config = config
        self.engine = config.resolved_engine()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.batch_size = self._resolve_batch_size()
        self._limiter = (
            SessionRateLimiter(config.rate_limit)
            if config.rate_limit is not None
            else None
        )
        self._queues: List["asyncio.Queue[object]"] = []
        self._engines: List[ShardEngine] = []
        self._tasks: List["asyncio.Task"] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pending = 0
        self._started_at: Optional[float] = None
        self._closed = True

    @classmethod
    def build(
        cls,
        config: ServeConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "RangingService":
        """The one way to construct a service from the unified config."""
        return cls(config, metrics=metrics)

    def _resolve_batch_size(self) -> int:
        if self.config.batch_size != "auto":
            return int(self.config.batch_size)
        cir_length = self.engine.cir_length or CIR_LENGTH_PRF64
        # Auto-sizing reuses the runtime's workload heuristic: the
        # "trials" a shard can see at once is its queue depth, and each
        # shard sizes independently (workers=1) because shards do not
        # share batches.
        return choose_batch_size(
            self.config.queue_depth,
            cir_length,
            len(self.engine.bank),
            workers=1,
            upsample_factor=self.engine.config.upsample_factor,
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "RangingService":
        """Spin up shard loops and the engine thread pool."""
        if not self._closed:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._closed = False
        self._started_at = self._loop.time()
        self._pending = 0
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.n_shards,
            thread_name_prefix="repro-serve",
        )
        self._queues = [
            asyncio.Queue(maxsize=self.config.queue_depth)
            for _ in range(self.config.n_shards)
        ]
        self._engines = [
            ShardEngine(self.engine) for _ in range(self.config.n_shards)
        ]
        self._tasks = [
            asyncio.ensure_future(self._shard_loop(shard))
            for shard in range(self.config.n_shards)
        ]
        metrics = self.metrics
        metrics.gauge("serve.shards").set(self.config.n_shards)
        metrics.gauge("serve.batch_size_max").set(self.batch_size)
        metrics.gauge("serve.queue_depth").set(0)
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` serves everything already accepted, then exits;
        ``drain=False`` cancels the shard loops and completes every
        still-pending request with status ``"cancelled"`` — in both
        modes every accepted request still reaches exactly one terminal
        status.
        """
        if self._closed and not self._tasks:
            return
        self._closed = True
        if drain:
            for queue in self._queues:
                await queue.put(STOP)
            await asyncio.gather(*self._tasks, return_exceptions=True)
        else:
            for task in self._tasks:
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            for queue in self._queues:
                while True:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is not STOP:
                        self._pending -= 1
                        self._complete_unserved(item, "cancelled")
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.metrics.gauge("serve.queue_depth").set(0)

    # -- ingress -------------------------------------------------------------

    def enqueue(
        self, request: RangingRequest
    ) -> "asyncio.Future[RangingOutcome]":
        """Accept a request (or refuse it) without awaiting its result.

        Returns the future that resolves to the request's
        :class:`RangingOutcome`; raises :class:`RateLimitedError` when
        the session's token bucket is empty,
        :class:`ServiceOverloadedError` when the target shard is at its
        high-watermark, and ``RuntimeError`` when the service is not
        accepting (never started, stopping, or stopped).
        """
        if self._closed or self._loop is None:
            raise RuntimeError("service is not accepting requests")
        metrics = self.metrics
        metrics.counter("serve.requests").inc()
        if self._limiter is not None:
            # Rate limiting fires before the queue check: an abusive
            # session is bounced before it can claim queue slots.
            retry_after = self._limiter.check(request.session_id)
            if retry_after > 0.0:
                metrics.counter("serve.rate_limited").inc()
                raise RateLimitedError(retry_after, request.session_id)
        shard = _shard_of(request.session_id, self.config.n_shards)
        queue = self._queues[shard]
        if queue.full():
            metrics.counter("serve.rejected").inc()
            raise ServiceOverloadedError(
                self.config.retry_after_s, shard, queue.qsize()
            )
        now = self._loop.time()
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        envelope = _Envelope(
            request=request,
            future=self._loop.create_future(),
            enqueued_at=now,
            deadline=None if budget is None else now + float(budget),
            shard=shard,
        )
        queue.put_nowait(envelope)
        self._pending += 1
        metrics.counter("serve.accepted").inc()
        metrics.gauge("serve.queue_depth").set(self._pending)
        return envelope.future

    async def submit(self, request: RangingRequest) -> RangingOutcome:
        """Accept a request and await its terminal result.

        Cancelling this coroutine cancels the underlying future; the
        shard loop notices and accounts the request as ``cancelled``
        (it is dropped before the engine runs when possible).
        """
        return await self.enqueue(request)

    # -- shard loop ----------------------------------------------------------

    async def _shard_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        batcher = MicroBatcher(self.batch_size, self.config.max_batch_delay_s)
        metrics = self.metrics
        loop = self._loop
        assert loop is not None
        held: List[_Envelope] = []
        drained = 0  # how many of `held` already left the pending count
        try:
            while True:
                drained = 0
                batch, cause, stopped = await batcher.fill(queue, into=held)
                if batch:
                    self._pending -= len(batch)
                    drained = len(batch)
                    metrics.gauge("serve.queue_depth").set(self._pending)
                    metrics.counter(f"serve.flush_{cause}").inc()
                    metrics.histogram("serve.batch_size").observe(len(batch))
                    await self._serve_batch(shard, batch, cause)
                held.clear()
                if stopped:
                    return
        except asyncio.CancelledError:
            # Non-drain stop: whatever this loop currently holds — a
            # partial batch cancelled inside fill() (``into`` keeps the
            # consumed items reachable) or one mid-engine — gets a
            # terminal "cancelled" status; guarded completes keep the
            # exactly-once invariant even for a batch already finishing
            # on the engine thread.
            self._pending -= max(0, len(held) - drained)
            for envelope in held:
                if not envelope.future.done():
                    self._complete_unserved(envelope, "cancelled")
            raise

    async def _serve_batch(
        self, shard: int, batch: List[_Envelope], cause: str
    ) -> None:
        loop = self._loop
        metrics = self.metrics
        assert loop is not None
        now = loop.time()
        live: List[_Envelope] = []
        for envelope in batch:
            if envelope.future.done():
                # Caller cancelled while queued; terminal state already
                # reached on their side.
                metrics.counter("serve.cancelled").inc()
            elif envelope.deadline is not None and now > envelope.deadline:
                self._complete_unserved(envelope, "shed")
            else:
                live.append(envelope)
        if not live:
            return
        engine = self._engines[shard]
        cirs = [envelope.request.cir for envelope in live]
        stds = [envelope.request.noise_std for envelope in live]
        started = loop.time()
        outcomes, passes, fallbacks = await loop.run_in_executor(
            self._executor, engine.execute, cirs, stds
        )
        elapsed = loop.time() - started
        metrics.timer("serve.engine").record(elapsed)
        metrics.counter("serve.batches").inc()
        metrics.counter("serve.engine_passes").inc(passes)
        metrics.counter("serve.engine_items").inc(len(live))
        if fallbacks:
            metrics.counter("serve.batch_fallbacks").inc(fallbacks)
        finished = loop.time()
        defense = self.config.defense
        for envelope, (ok, payload) in zip(live, outcomes):
            if envelope.future.done():
                metrics.counter("serve.cancelled").inc()
                continue
            latency = finished - envelope.enqueued_at
            request = envelope.request
            annotations = envelope.annotations()
            if ok:
                if defense is not None:
                    # Annotate-only: the defense screen never removes
                    # responses at this layer, so streaming results
                    # stay byte-equal to the offline engines.
                    flags = screen_responses(defense, request.cir, payload)
                    if flags:
                        metrics.counter("serve.defense_flagged").inc(
                            len(flags)
                        )
                        annotations["defense"] = {
                            "flags": [
                                {
                                    "responder_id": flag.responder_id,
                                    "reason": flag.reason,
                                    "value": flag.value,
                                }
                                for flag in flags
                            ]
                        }
                metrics.counter("serve.completed").inc()
                metrics.histogram("serve.latency_s").observe(latency)
                envelope.future.set_result(
                    RangingOutcome(
                        session_id=request.session_id,
                        sequence=request.sequence,
                        status="ok",
                        responses=payload,
                        latency_s=latency,
                        shard=envelope.shard,
                        batch_size=len(live),
                        flush_cause=cause,
                        annotations=annotations,
                    )
                )
            else:
                metrics.counter("serve.errors").inc()
                envelope.future.set_result(
                    RangingOutcome(
                        session_id=request.session_id,
                        sequence=request.sequence,
                        status="error",
                        latency_s=latency,
                        shard=envelope.shard,
                        batch_size=len(live),
                        flush_cause=cause,
                        error=str(payload),
                        annotations=annotations,
                    )
                )

    def _complete_unserved(self, envelope: _Envelope, status: str) -> None:
        """Terminal completion for a request the engine never served."""
        metrics = self.metrics
        if envelope.future.done():
            metrics.counter("serve.cancelled").inc()
            return
        loop = self._loop
        latency = (
            (loop.time() - envelope.enqueued_at) if loop is not None else 0.0
        )
        metrics.counter(f"serve.{status}").inc()
        request = envelope.request
        envelope.future.set_result(
            RangingOutcome(
                session_id=request.session_id,
                sequence=request.sequence,
                status=status,
                latency_s=latency,
                shard=envelope.shard,
                annotations=envelope.annotations(),
            )
        )

    # -- introspection -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests accepted but not yet terminal."""
        return self._pending

    def healthz(self) -> Dict[str, object]:
        """Liveness summary served by the ``/healthz`` endpoint."""
        if self._closed:
            status = "stopped" if not self._tasks else "draining"
        else:
            status = "ok"
        uptime = 0.0
        if self._loop is not None and self._started_at is not None:
            uptime = max(0.0, self._loop.time() - self._started_at)
        return {
            "status": status,
            "uptime_s": uptime,
            "shards": self.config.n_shards,
            "batch_size": self.batch_size,
            "queue_depth": self._pending,
            "mode": self.engine.mode,
        }
