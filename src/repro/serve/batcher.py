"""The dynamic micro-batcher: flush on batch-full *or* deadline.

This is the inference-server batching pattern.  A shard's worker loop
blocks until the first pending item arrives, then keeps gathering until
either the batch is full (``batch_size`` items — amortise the engine's
fixed per-pass cost) or ``max_delay_s`` has elapsed since that first
item (bound the latency a lonely request pays for the company it never
got).  Whichever fires first flushes, and the flush cause is reported
so the service can export the full-vs-deadline split — the single most
useful signal when tuning ``batch_size`` against offered load.

The batcher is deliberately engine- and item-agnostic (items are
opaque; a ``stop`` sentinel ends the stream) so the property tests in
``tests/test_serve_batcher.py`` can hammer it with plain integers:
every enqueued item appears in exactly one flushed batch, in enqueue
order, and no flush waits longer than ``max_delay_s`` past its first
item.
"""

from __future__ import annotations

import asyncio
from typing import Any, List, Optional, Tuple

__all__ = ["MicroBatcher", "STOP"]

#: Sentinel that ends a batcher's stream (enqueue after all real items).
STOP = object()


class MicroBatcher:
    """Gather queue items into batches bounded by size and delay.

    Parameters
    ----------
    batch_size:
        Flush as soon as this many items are pending (cause ``"full"``).
    max_delay_s:
        Flush at most this long after the *first* item of the batch
        arrived (cause ``"deadline"``), even if the batch is short.
        ``0`` degrades to single-item batches with cause ``"deadline"``
        unless the queue already holds a full batch.
    """

    def __init__(self, batch_size: int, max_delay_s: float) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {max_delay_s}"
            )
        self.batch_size = int(batch_size)
        self.max_delay_s = float(max_delay_s)

    async def fill(
        self,
        queue: "asyncio.Queue[Any]",
        first: Optional[Any] = None,
        *,
        into: Optional[List[Any]] = None,
    ) -> Tuple[List[Any], str, bool]:
        """Gather one batch; returns ``(batch, flush_cause, stopped)``.

        Blocks until the first item arrives (or uses ``first`` when the
        caller already dequeued it), then drains without waiting while
        items are immediately available, and waits out the remaining
        deadline budget otherwise.  ``stopped`` is ``True`` when the
        :data:`STOP` sentinel was consumed; the returned batch holds
        every item seen before it (cause ``"drain"``).

        ``into`` (must be an empty list) is filled in place and is also
        the returned batch — a caller that gets cancelled mid-gather
        still holds every item this call consumed from the queue, which
        is how the service keeps its no-lost-requests invariant across
        a non-drain shutdown.
        """
        batch: List[Any]
        if into is not None:
            if into:
                raise ValueError("into must start empty")
            batch = into
        else:
            batch = []
        if first is None:
            first = await queue.get()
        if first is STOP:
            return batch, "drain", True
        batch.append(first)
        if self.batch_size == 1:
            return batch, "full", False
        loop = asyncio.get_running_loop()
        flush_at = loop.time() + self.max_delay_s
        while len(batch) < self.batch_size:
            # Fast path: take whatever is already queued without
            # yielding — a burst that arrived while the engine ran the
            # previous batch flushes at full size immediately.
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                remaining = flush_at - loop.time()
                if remaining <= 0:
                    return batch, "deadline", False
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    return batch, "deadline", False
            if item is STOP:
                return batch, "drain", True
            batch.append(item)
        return batch, "full", False
