"""The serving wire protocol: versioned, length-prefixed frames.

Everything that crosses a process boundary in :mod:`repro.serve` — the
parent :class:`~repro.serve.supervisor.RangingServer` talking to its
worker processes — travels as **frames**:

``magic(2) | version(1) | kind(1) | length(4, big-endian) | payload``

The payload is canonical JSON (sorted keys, no whitespace) with a small
tagged-object extension for the types JSON cannot carry natively:
complex scalars, NumPy arrays (raw little-endian bytes, base64 — CIRs
round-trip *bit-exact*), and the engine response dataclasses
(:class:`~repro.core.detection.DetectedResponse` /
:class:`~repro.core.pulse_id.ClassifiedResponse`).  Python's JSON float
serialization is shortest-round-trip ``repr``, so every finite float
(and ±inf — a single-template classification carries ``confidence =
inf``) survives the wire value-exact; this is what lets the
multi-process acceptance test demand *byte-equal* streaming results.

Frame kinds
-----------
``REQUEST``
    Parent → worker: one :class:`~repro.serve.request.RangingRequest`
    plus a correlation id.  Defense/fault ``annotations`` ride along.
``RESPONSE``
    Worker → parent: the request's terminal
    :class:`~repro.serve.request.RangingOutcome`.
``RETRY_AFTER``
    Worker → parent: 429-style refusal (the worker's own admission
    control fired) with the ``reason`` tag — ``"backpressure"`` and
    ``"rate_limit"`` stay distinct end to end.
``ERROR``
    A protocol-level error (malformed peer frame); carries no
    correlation id when the offending frame could not be parsed.
``HEARTBEAT``
    Worker → parent liveness beacon: pending count plus a metrics
    snapshot the parent folds into the merged ``/metrics`` view.  A
    worker that stops heartbeating past the configured timeout is
    killed and restarted.
``CONTROL``
    Parent → worker lifecycle commands (``stop`` with a drain flag).

Robustness
----------
Decoding is defensive by construction: a frame with the wrong magic or
an unknown kind raises :class:`WireError`; a version this build does
not speak raises :class:`WireVersionError`; a declared payload length
over the bound raises :class:`FrameTooLargeError` *before* any payload
is buffered; a payload that is not a JSON object raises
:class:`WireError`.  The incremental :class:`FrameDecoder` returns only
complete frames, so arbitrarily chunked/interleaved TCP reads reassemble
exactly — property-tested in ``tests/test_serve_wire.py``.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.detection import DetectedResponse
from repro.core.pulse_id import ClassifiedResponse
from repro.serve.request import RangingOutcome, RangingRequest

__all__ = [
    "WIRE_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_ERROR",
    "KIND_HEARTBEAT",
    "KIND_RETRY_AFTER",
    "KIND_CONTROL",
    "KIND_NAMES",
    "Frame",
    "FrameDecoder",
    "WireError",
    "WireVersionError",
    "FrameTooLargeError",
    "encode_frame",
    "decode_frame",
    "request_to_payload",
    "request_from_payload",
    "outcome_to_payload",
    "outcome_from_payload",
]

#: Two magic bytes open every frame ("Concurrent Ranging").
MAGIC = b"\xc7\x52"
WIRE_VERSION = 1

#: Header: magic(2) version(1) kind(1) payload-length(4, big-endian).
_HEADER = struct.Struct(">2sBBI")
HEADER_BYTES = _HEADER.size

#: Default payload-size bound; a 509-tap complex CIR is ~11 KiB encoded,
#: so 8 MiB leaves three orders of magnitude of headroom while still
#: refusing a nonsense length prefix before buffering it.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
KIND_HEARTBEAT = 4
KIND_RETRY_AFTER = 5
KIND_CONTROL = 6

KIND_NAMES = {
    KIND_REQUEST: "request",
    KIND_RESPONSE: "response",
    KIND_ERROR: "error",
    KIND_HEARTBEAT: "heartbeat",
    KIND_RETRY_AFTER: "retry_after",
    KIND_CONTROL: "control",
}


class WireError(ValueError):
    """A malformed frame: bad magic, unknown kind, or undecodable payload."""


class WireVersionError(WireError):
    """The peer speaks a wire version this build does not."""


class FrameTooLargeError(WireError):
    """A frame's declared payload exceeds the configured bound."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: its kind tag and JSON-object payload."""

    kind: int
    payload: Dict[str, Any]

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"unknown({self.kind})")


# -- tagged-JSON payload codec ------------------------------------------------

_TAG = "__wire__"


def _json_default(value: Any) -> Any:
    """Tagged encodings for the non-JSON types the serving stack carries."""
    if isinstance(value, complex):
        return {_TAG: "complex", "re": value.real, "im": value.imag}
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {
            _TAG: "ndarray",
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode("ascii"),
        }
    if isinstance(value, DetectedResponse):
        return {
            _TAG: "detected",
            "index": float(value.index),
            "delay_s": float(value.delay_s),
            "amplitude": complex(value.amplitude),
            "template_index": int(value.template_index),
            "scores": [float(score) for score in value.scores],
        }
    if isinstance(value, ClassifiedResponse):
        return {
            _TAG: "classified",
            "response": value.response,
            "shape_index": int(value.shape_index),
            "confidence": float(value.confidence),
        }
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.complexfloating):
        return _json_default(complex(value))
    raise TypeError(
        f"{type(value).__name__} is not wire-serializable"
    )


def _decode_tagged(obj: Dict[str, Any]) -> Any:
    tag = obj.get(_TAG)
    if tag is None:
        return obj
    try:
        if tag == "complex":
            return complex(obj["re"], obj["im"])
        if tag == "ndarray":
            raw = base64.b64decode(obj["data"], validate=True)
            array = np.frombuffer(raw, dtype=np.dtype(obj["dtype"]))
            return array.reshape([int(n) for n in obj["shape"]]).copy()
        if tag == "detected":
            return DetectedResponse(
                index=float(obj["index"]),
                delay_s=float(obj["delay_s"]),
                amplitude=complex(obj["amplitude"]),
                template_index=int(obj["template_index"]),
                scores=tuple(float(score) for score in obj["scores"]),
            )
        if tag == "classified":
            return ClassifiedResponse(
                response=obj["response"],
                shape_index=int(obj["shape_index"]),
                confidence=float(obj["confidence"]),
            )
    except (KeyError, TypeError, ValueError, binascii.Error) as error:
        raise WireError(f"malformed tagged object {tag!r}: {error}") from None
    raise WireError(f"unknown wire tag {tag!r}")


def _dumps(payload: Dict[str, Any]) -> bytes:
    return json.dumps(
        payload,
        default=_json_default,
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")


def _loads(raw: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(raw.decode("utf-8"), object_hook=_decode_tagged)
    except WireError:
        raise
    except (ValueError, UnicodeDecodeError) as error:
        raise WireError(f"undecodable frame payload: {error}") from None
    if not isinstance(payload, dict):
        raise WireError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


# -- frame encode / decode ----------------------------------------------------


def encode_frame(
    kind: int,
    payload: Dict[str, Any],
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """One wire frame; raises :class:`FrameTooLargeError` over the bound."""
    if kind not in KIND_NAMES:
        raise WireError(f"unknown frame kind {kind}")
    body = _dumps(payload)
    if len(body) > max_frame_bytes:
        raise FrameTooLargeError(
            f"{KIND_NAMES[kind]} frame payload is {len(body)} bytes "
            f"(bound {max_frame_bytes})"
        )
    return _HEADER.pack(MAGIC, WIRE_VERSION, kind, len(body)) + body


def decode_frame(
    buffer: bytes,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[Optional[Frame], int]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(frame, consumed_bytes)``; ``(None, 0)`` means the buffer
    holds only a frame prefix — feed more bytes.  Raises a
    :class:`WireError` subclass for anything structurally wrong, which
    a stream consumer must treat as a poisoned peer (there is no way to
    resynchronise a length-prefixed stream after a bad header).
    """
    if len(buffer) < HEADER_BYTES:
        return None, 0
    magic, version, kind, length = _HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"peer speaks wire version {version}, this build speaks "
            f"{WIRE_VERSION}"
        )
    if kind not in KIND_NAMES:
        raise WireError(f"unknown frame kind {kind}")
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"declared payload of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte bound"
        )
    end = HEADER_BYTES + length
    if len(buffer) < end:
        return None, 0
    return Frame(kind, _loads(bytes(buffer[HEADER_BYTES:end]))), end


class FrameDecoder:
    """Incremental decoder over an arbitrarily chunked byte stream.

    ``feed`` buffers bytes and returns every frame completed so far —
    zero, one, or many per call, independent of how the transport split
    them.  Errors are sticky: once a :class:`WireError` is raised the
    decoder refuses further input, because a length-prefixed stream
    cannot be resynchronised after a corrupt header.
    """

    def __init__(
        self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> None:
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> List[Frame]:
        if self._poisoned:
            raise WireError("decoder poisoned by an earlier malformed frame")
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            try:
                frame, consumed = decode_frame(
                    self._buffer, max_frame_bytes=self.max_frame_bytes
                )
            except WireError:
                self._poisoned = True
                raise
            if frame is None:
                return frames
            del self._buffer[:consumed]
            frames.append(frame)

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)


# -- request / outcome payload codecs ----------------------------------------


def request_to_payload(
    request: RangingRequest, request_id: int
) -> Dict[str, Any]:
    """The REQUEST frame payload for one request + correlation id."""
    payload: Dict[str, Any] = {
        "id": int(request_id),
        "session_id": request.session_id,
        "sequence": int(request.sequence),
        "cir": np.asarray(request.cir),
        "noise_std": float(request.noise_std),
        "deadline_s": (
            None if request.deadline_s is None else float(request.deadline_s)
        ),
    }
    if request.annotations:
        payload["annotations"] = dict(request.annotations)
    return payload


def request_from_payload(
    payload: Dict[str, Any]
) -> Tuple[RangingRequest, int]:
    """Rebuild ``(request, correlation_id)`` from a REQUEST payload."""
    try:
        cir = payload["cir"]
        if not isinstance(cir, np.ndarray):
            raise WireError("request 'cir' did not decode to an array")
        request = RangingRequest(
            session_id=str(payload["session_id"]),
            sequence=int(payload["sequence"]),
            cir=cir,
            noise_std=float(payload["noise_std"]),
            deadline_s=(
                None
                if payload.get("deadline_s") is None
                else float(payload["deadline_s"])
            ),
            annotations=payload.get("annotations"),
        )
        return request, int(payload["id"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed request payload: {error}") from None


def outcome_to_payload(
    outcome: RangingOutcome, request_id: int
) -> Dict[str, Any]:
    """The RESPONSE frame payload for one outcome + correlation id."""
    return {
        "id": int(request_id),
        "session_id": outcome.session_id,
        "sequence": int(outcome.sequence),
        "status": outcome.status,
        "responses": list(outcome.responses),
        "latency_s": float(outcome.latency_s),
        "shard": int(outcome.shard),
        "batch_size": int(outcome.batch_size),
        "flush_cause": outcome.flush_cause,
        "error": outcome.error,
        "worker": int(outcome.worker),
        "annotations": outcome.annotations,
    }


def outcome_from_payload(
    payload: Dict[str, Any]
) -> Tuple[RangingOutcome, int]:
    """Rebuild ``(outcome, correlation_id)`` from a RESPONSE payload."""
    try:
        outcome = RangingOutcome(
            session_id=str(payload["session_id"]),
            sequence=int(payload["sequence"]),
            status=str(payload["status"]),
            responses=list(payload["responses"]),
            latency_s=float(payload["latency_s"]),
            shard=int(payload["shard"]),
            batch_size=int(payload["batch_size"]),
            flush_cause=str(payload["flush_cause"]),
            error=payload.get("error"),
            worker=int(payload.get("worker", -1)),
            annotations=dict(payload.get("annotations") or {}),
        )
        return outcome, int(payload["id"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed outcome payload: {error}") from None
