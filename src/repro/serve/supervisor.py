"""Multi-process serving: a supervising parent over forked worker shards.

:class:`RangingServer` is the multi-process counterpart of the
in-process :class:`~repro.serve.service.RangingService`.  The parent
process owns **admission** (per-session rate limiting, per-worker
in-flight caps) and **supervision** (heartbeat liveness, restart,
re-homing); the K forked worker processes own **compute** — each runs a
plain ``RangingService`` (``n_shards`` micro-batching shards on its own
thread pool) and talks to the parent over one ``socketpair`` carrying
the length-prefixed frames of :mod:`repro.serve.wire`.

Routing reuses the service's session key: ``crc32(session_id) %
workers`` picks the worker, and inside the worker ``crc32(session_id) %
n_shards`` picks the shard — a session's requests stay FIFO end to end
because exactly one worker, one shard, and one ordered byte stream ever
carry them.

**Supervision and exactly-once accounting.**  Workers beacon a
HEARTBEAT frame (pending count + metrics snapshot) every
``heartbeat_interval_s``.  A worker whose process died or whose last
beacon is older than ``heartbeat_timeout_s`` is SIGKILLed and respawned;
every request the parent had routed to it that has not yet reached a
terminal state is **re-homed** — re-sent, same correlation id, to the
replacement.  This preserves the exactly-once terminal-status invariant:
a dead worker never answered those requests (its in-flight responses
died with its socket), so the replacement's answer is the first and
only one; in the false-positive case (a live-but-slow worker killed
mid-answer) the parent's pending table resolves each id at most once
and counts any late duplicate as an orphan.  ``sent == ok + shed +
error + cancelled`` therefore holds across kills, which
``tests/test_serve_mp.py`` and the bench's worker-kill pass assert.

**Fork requirement.**  Workers are created with the ``fork`` start
method: the socketpair fd and the (numpy-heavy) engine configuration
transfer by inheritance, with no pickling of template banks.  On
platforms without ``fork`` (Windows) construction fails with an explicit
error — multi-process serving is a POSIX deployment feature.

The parent's own metrics live under ``server.*`` (admission, routing,
supervision); worker heartbeats carry the familiar ``serve.*`` metrics,
and :attr:`RangingServer.metrics` merges parent + latest worker
snapshots into one registry for ``/metrics``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.runtime.metrics import MetricsRegistry
from repro.serve.ratelimit import SessionRateLimiter
from repro.serve.request import (
    RangingOutcome,
    RangingRequest,
    RateLimitedError,
    ServiceOverloadedError,
    ServiceRejectedError,
)
from repro.serve.service import RangingService, ServeConfig, _shard_of
from repro.serve.wire import (
    KIND_CONTROL,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_REQUEST,
    KIND_RESPONSE,
    KIND_RETRY_AFTER,
    Frame,
    FrameDecoder,
    WireError,
    encode_frame,
    outcome_from_payload,
    outcome_to_payload,
    request_from_payload,
    request_to_payload,
)

__all__ = ["RangingServer", "worker_main"]

#: How long stop(drain=True) waits for in-flight requests before
#: force-completing the stragglers as ``cancelled``.
DRAIN_TIMEOUT_S = 30.0

_READ_CHUNK = 1 << 16


def _status_counter(status: str) -> str:
    """Parent-side counter name for one terminal status."""
    return {
        "ok": "server.completed",
        "shed": "server.shed",
        "cancelled": "server.cancelled",
        "error": "server.errors",
    }.get(status, "server.unknown_status")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


async def _pump(outbox: "asyncio.Queue", writer: asyncio.StreamWriter) -> None:
    """Single-writer task: serialize every outgoing frame onto the pipe."""
    try:
        while True:
            frame = await outbox.get()
            if frame is None:
                return
            writer.write(frame)
            await writer.drain()
    except (ConnectionError, BrokenPipeError):
        return  # peer vanished; the reader side handles the fallout


async def _worker_amain(
    sock: socket.socket, worker_index: int, config: ServeConfig
) -> None:
    reader, writer = await asyncio.open_connection(sock=sock)
    service = RangingService.build(config.worker_local())
    await service.start()
    outbox: "asyncio.Queue" = asyncio.Queue()
    writer_task = asyncio.ensure_future(_pump(outbox, writer))
    max_bytes = config.max_frame_bytes

    def _heartbeat_frame() -> bytes:
        return encode_frame(
            KIND_HEARTBEAT,
            {
                "worker": worker_index,
                "pending": service.pending,
                "metrics": service.metrics.snapshot(),
            },
            max_frame_bytes=max_bytes,
        )

    async def _beacon() -> None:
        while True:
            await outbox.put(_heartbeat_frame())
            await asyncio.sleep(config.heartbeat_interval_s)

    beacon_task = asyncio.ensure_future(_beacon())

    inflight: Set["asyncio.Task"] = set()

    async def _respond(request_id: int, future: "asyncio.Future") -> None:
        outcome: RangingOutcome = await future
        outcome.worker = worker_index
        await outbox.put(
            encode_frame(
                KIND_RESPONSE,
                outcome_to_payload(outcome, request_id),
                max_frame_bytes=max_bytes,
            )
        )

    def _handle_request(frame: Frame) -> None:
        request, request_id = request_from_payload(frame.payload)
        try:
            future = service.enqueue(request)
        except ServiceRejectedError as error:
            payload: Dict[str, Any] = {
                "id": request_id,
                "reason": error.reason,
                "retry_after_s": error.retry_after_s,
                "message": str(error),
                "session_id": request.session_id,
                "shard": getattr(error, "shard", -1),
                "queue_depth": getattr(error, "queue_depth", 0),
            }
            outbox.put_nowait(
                encode_frame(
                    KIND_RETRY_AFTER, payload, max_frame_bytes=max_bytes
                )
            )
            return
        task = asyncio.ensure_future(_respond(request_id, future))
        inflight.add(task)
        task.add_done_callback(inflight.discard)

    drain = False
    try:
        decoder = FrameDecoder(max_bytes)
        running = True
        while running:
            data = await reader.read(_READ_CHUNK)
            if not data:
                break  # parent gone: abandon, do not drain
            for frame in decoder.feed(data):
                if frame.kind == KIND_REQUEST:
                    _handle_request(frame)
                elif frame.kind == KIND_CONTROL:
                    if frame.payload.get("op") == "stop":
                        drain = bool(frame.payload.get("drain", True))
                        running = False
                        break
                # Other kinds are parent-bound; ignore defensively.
    except (WireError, ConnectionError):
        drain = False
    finally:
        beacon_task.cancel()
        if drain:
            await service.stop(drain=True)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            # Final metrics beacon so the parent's merged view is exact.
            await outbox.put(_heartbeat_frame())
        else:
            for task in inflight:
                task.cancel()
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            await service.stop(drain=False)
        await outbox.put(None)
        await writer_task
        writer.close()


def worker_main(
    sock: socket.socket,
    siblings: Sequence[socket.socket],
    worker_index: int,
    config: ServeConfig,
) -> None:
    """Entry point of one forked worker process.

    ``siblings`` are the parent-side socket ends this fork inherited;
    closing them here keeps EOF semantics crisp (a closed parent end
    must read as EOF in exactly one worker).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for other in siblings:
        try:
            other.close()
        except OSError:
            pass
    asyncio.run(_worker_amain(sock, worker_index, config))


# ---------------------------------------------------------------------------
# Parent process
# ---------------------------------------------------------------------------


@dataclass
class _PendingRequest:
    """Parent-side record of one accepted, not-yet-terminal request."""

    request: RangingRequest
    future: "asyncio.Future[RangingOutcome]"
    worker: int
    enqueued_at: float


@dataclass
class _WorkerHandle:
    """Everything the parent holds about one live worker process."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    sock: socket.socket
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    outbox: "asyncio.Queue" = field(default_factory=asyncio.Queue)
    writer_task: Optional["asyncio.Task"] = None
    reader_task: Optional["asyncio.Task"] = None
    pending_ids: Set[int] = field(default_factory=set)
    last_beat: float = 0.0
    snapshot: Dict[str, Any] = field(default_factory=dict)
    worker_pending: int = 0


class RangingServer:
    """Supervised multi-process deployment of the ranging service.

    Same ingress surface as :class:`RangingService` (``start`` /
    ``enqueue`` / ``submit`` / ``stop`` / ``healthz`` / ``metrics`` /
    ``pending``), so :class:`~repro.serve.client.RangingClient` and the
    ``/metrics`` endpoint treat both interchangeably.
    """

    def __init__(
        self,
        config: ServeConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if config.workers < 1:
            raise ValueError(
                f"RangingServer needs ServeConfig.workers >= 1, got "
                f"{config.workers}; use RangingService for in-process "
                "serving"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "multi-process serving requires the 'fork' start method "
                "(fd and engine inheritance); this platform offers only "
                f"{multiprocessing.get_all_start_methods()}"
            )
        config.resolved_engine()  # fail now if the engine is missing/bad
        self.config = config
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._limiter = (
            SessionRateLimiter(config.rate_limit)
            if config.rate_limit is not None
            else None
        )
        self._ctx = multiprocessing.get_context("fork")
        self._handles: List[_WorkerHandle] = []
        self._pending: Dict[int, _PendingRequest] = {}
        self._next_id = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._supervisor_task: Optional["asyncio.Task"] = None
        self._started_at: Optional[float] = None
        self._closed = True
        self._restarts = 0
        self._last_snapshots: List[Dict[str, Any]] = []

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "RangingServer":
        if not self._closed:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._closed = False
        self._started_at = self._loop.time()
        self._pending = {}
        self._handles = []
        for index in range(self.config.workers):
            self._handles.append(await self._spawn(index))
        self._supervisor_task = asyncio.ensure_future(self._supervise())
        metrics = self._metrics
        metrics.gauge("server.workers").set(self.config.workers)
        metrics.gauge("server.pending").set(0)
        return self

    async def _spawn(self, index: int) -> _WorkerHandle:
        assert self._loop is not None
        parent_sock, child_sock = socket.socketpair()
        siblings = [handle.sock for handle in self._handles] + [parent_sock]
        process = self._ctx.Process(
            target=worker_main,
            args=(child_sock, siblings, index, self.config),
            daemon=True,
            name=f"repro-serve-worker-{index}",
        )
        process.start()
        child_sock.close()
        reader, writer = await asyncio.open_connection(sock=parent_sock)
        handle = _WorkerHandle(
            index=index,
            process=process,
            sock=parent_sock,
            reader=reader,
            writer=writer,
            last_beat=self._loop.time(),
        )
        handle.writer_task = asyncio.ensure_future(
            _pump(handle.outbox, writer)
        )
        handle.reader_task = asyncio.ensure_future(self._read_worker(handle))
        return handle

    async def stop(self, drain: bool = True) -> None:
        """Stop workers and the supervisor.

        ``drain=True`` lets every accepted request finish (bounded by
        :data:`DRAIN_TIMEOUT_S`; stragglers — e.g. victims of a worker
        that dies mid-drain — complete as ``cancelled``); ``drain=False``
        cancels everything pending immediately.  Either way every
        accepted request reaches exactly one terminal status.
        """
        if self._closed and not self._handles:
            return
        self._closed = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            await asyncio.gather(
                self._supervisor_task, return_exceptions=True
            )
            self._supervisor_task = None
        if drain:
            stop_frame = encode_frame(
                KIND_CONTROL,
                {"op": "stop", "drain": True},
                max_frame_bytes=self.config.max_frame_bytes,
            )
            for handle in self._handles:
                handle.outbox.put_nowait(stop_frame)
            futures = [
                entry.future
                for entry in self._pending.values()
                if not entry.future.done()
            ]
            if futures:
                await asyncio.wait(futures, timeout=DRAIN_TIMEOUT_S)
        self._cancel_pending()
        for handle in self._handles:
            await self._dismantle(handle, kill=not drain)
        self._last_snapshots = [
            handle.snapshot for handle in self._handles if handle.snapshot
        ]
        self._handles = []
        self._metrics.gauge("server.pending").set(0)

    def _cancel_pending(self) -> None:
        for request_id, entry in list(self._pending.items()):
            if not entry.future.done():
                self._metrics.counter("server.cancelled").inc()
                entry.future.set_result(
                    RangingOutcome(
                        session_id=entry.request.session_id,
                        sequence=entry.request.sequence,
                        status="cancelled",
                        worker=entry.worker,
                        annotations=(
                            dict(entry.request.annotations)
                            if entry.request.annotations
                            else {}
                        ),
                    )
                )
        self._pending.clear()
        for handle in self._handles:
            handle.pending_ids.clear()

    async def _dismantle(self, handle: _WorkerHandle, kill: bool) -> None:
        """Tear one worker down (gracefully after drain, or SIGKILL)."""
        assert self._loop is not None
        if not kill and handle.reader_task is not None:
            # Graceful path: wait briefly for the worker's final frames
            # (responses + last metrics beacon) to arrive as EOF.
            await asyncio.wait([handle.reader_task], timeout=5.0)
        if kill and handle.process.is_alive():
            handle.process.kill()
        await self._loop.run_in_executor(
            None, lambda: handle.process.join(5.0)
        )
        for task in (handle.reader_task, handle.writer_task):
            if task is not None and not task.done():
                task.cancel()
        tasks = [
            task
            for task in (handle.reader_task, handle.writer_task)
            if task is not None
        ]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        handle.writer.close()

    # -- ingress -------------------------------------------------------------

    def enqueue(
        self, request: RangingRequest
    ) -> "asyncio.Future[RangingOutcome]":
        """Admit a request and route it to its session's worker.

        Raises :class:`RateLimitedError` (session over budget),
        :class:`ServiceOverloadedError` (worker at its in-flight cap),
        or ``RuntimeError`` (server not accepting).  Worker-side
        admission failures surface as the same exception types on the
        returned future.
        """
        if self._closed or self._loop is None:
            raise RuntimeError("server is not accepting requests")
        metrics = self._metrics
        metrics.counter("server.requests").inc()
        if self._limiter is not None:
            retry_after = self._limiter.check(request.session_id)
            if retry_after > 0.0:
                metrics.counter("server.rate_limited").inc()
                raise RateLimitedError(retry_after, request.session_id)
        worker = _shard_of(request.session_id, self.config.workers)
        handle = self._handles[worker]
        capacity = self.config.queue_depth * self.config.n_shards
        if len(handle.pending_ids) >= capacity:
            metrics.counter("server.rejected").inc()
            raise ServiceOverloadedError(
                self.config.retry_after_s, worker, len(handle.pending_ids)
            )
        request_id = self._next_id
        # Encode before registering so an unserializable request fails
        # cleanly at ingress instead of leaking a pending entry.
        frame = encode_frame(
            KIND_REQUEST,
            request_to_payload(request, request_id),
            max_frame_bytes=self.config.max_frame_bytes,
        )
        self._next_id += 1
        entry = _PendingRequest(
            request=request,
            future=self._loop.create_future(),
            worker=worker,
            enqueued_at=self._loop.time(),
        )
        self._pending[request_id] = entry
        handle.pending_ids.add(request_id)
        handle.outbox.put_nowait(frame)
        metrics.counter("server.accepted").inc()
        metrics.gauge("server.pending").set(len(self._pending))
        return entry.future

    async def submit(self, request: RangingRequest) -> RangingOutcome:
        """Admit a request and await its terminal outcome."""
        return await self.enqueue(request)

    # -- worker stream handling ----------------------------------------------

    async def _read_worker(self, handle: _WorkerHandle) -> None:
        decoder = FrameDecoder(self.config.max_frame_bytes)
        try:
            while True:
                data = await handle.reader.read(_READ_CHUNK)
                if not data:
                    return
                for frame in decoder.feed(data):
                    self._on_frame(handle, frame)
        except (WireError, ConnectionError):
            self._metrics.counter("server.wire_errors").inc()
            # Leave the stream dead; supervision restarts the worker.

    def _on_frame(self, handle: _WorkerHandle, frame: Frame) -> None:
        assert self._loop is not None
        metrics = self._metrics
        if frame.kind == KIND_HEARTBEAT:
            handle.last_beat = self._loop.time()
            handle.snapshot = dict(frame.payload.get("metrics") or {})
            handle.worker_pending = int(frame.payload.get("pending", 0))
            metrics.counter("server.heartbeats").inc()
            return
        if frame.kind == KIND_RESPONSE:
            outcome, request_id = outcome_from_payload(frame.payload)
            entry = self._pending.pop(request_id, None)
            handle.pending_ids.discard(request_id)
            if entry is None or entry.future.done():
                # A re-homed request answered twice (kill raced a live
                # answer) — the first terminal result already counted.
                metrics.counter("server.orphan_responses").inc()
                return
            metrics.counter(_status_counter(outcome.status)).inc()
            metrics.histogram("server.latency_s").observe(
                self._loop.time() - entry.enqueued_at
            )
            metrics.gauge("server.pending").set(len(self._pending))
            entry.future.set_result(outcome)
            return
        if frame.kind == KIND_RETRY_AFTER:
            payload = frame.payload
            request_id = int(payload["id"])
            entry = self._pending.pop(request_id, None)
            handle.pending_ids.discard(request_id)
            if entry is None or entry.future.done():
                metrics.counter("server.orphan_responses").inc()
                return
            reason = str(payload.get("reason", "backpressure"))
            retry_after_s = float(payload.get("retry_after_s", 0.0))
            metrics.counter(f"server.retry_after_{reason}").inc()
            metrics.gauge("server.pending").set(len(self._pending))
            if reason == "rate_limit":
                error: ServiceRejectedError = RateLimitedError(
                    retry_after_s, str(payload.get("session_id", ""))
                )
            else:
                error = ServiceOverloadedError(
                    retry_after_s,
                    int(payload.get("shard", -1)),
                    int(payload.get("queue_depth", 0)),
                )
            entry.future.set_exception(error)
            return
        if frame.kind == KIND_ERROR:
            metrics.counter("server.peer_errors").inc()
            return
        metrics.counter("server.unexpected_frames").inc()

    # -- supervision ---------------------------------------------------------

    async def _supervise(self) -> None:
        assert self._loop is not None
        interval = self.config.heartbeat_interval_s
        timeout = self.config.heartbeat_timeout_s
        while True:
            await asyncio.sleep(interval)
            if self._closed:
                return
            now = self._loop.time()
            for index in range(len(self._handles)):
                handle = self._handles[index]
                dead = not handle.process.is_alive() or (
                    now - handle.last_beat > timeout
                )
                if dead:
                    await self._restart(index)

    async def _restart(self, index: int) -> None:
        """Replace one worker and re-home its unanswered requests."""
        old = self._handles[index]
        metrics = self._metrics
        metrics.counter("server.worker_restarts").inc()
        self._restarts += 1
        await self._dismantle(old, kill=True)
        replacement = await self._spawn(index)
        self._handles[index] = replacement
        rehomed = 0
        for request_id in sorted(old.pending_ids):
            entry = self._pending.get(request_id)
            if entry is None or entry.future.done():
                continue
            frame = encode_frame(
                KIND_REQUEST,
                request_to_payload(entry.request, request_id),
                max_frame_bytes=self.config.max_frame_bytes,
            )
            replacement.pending_ids.add(request_id)
            replacement.outbox.put_nowait(frame)
            rehomed += 1
        if rehomed:
            metrics.counter("server.rehomed").inc(rehomed)

    # -- introspection -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests accepted but not yet terminal, across all workers."""
        return len(self._pending)

    @property
    def restarts(self) -> int:
        """Workers restarted by supervision since start."""
        return self._restarts

    @property
    def worker_processes(self) -> List["multiprocessing.process.BaseProcess"]:
        """Live worker process handles (for chaos tests and ops)."""
        return [handle.process for handle in self._handles]

    @property
    def metrics(self) -> MetricsRegistry:
        """Parent metrics merged with the latest worker snapshots.

        Parent-side series use the ``server.*`` namespace and worker
        snapshots the ``serve.*`` one, so merging never double-counts.
        """
        snapshots = [self._metrics.snapshot()]
        if self._handles:
            snapshots.extend(
                handle.snapshot
                for handle in self._handles
                if handle.snapshot
            )
        else:
            snapshots.extend(self._last_snapshots)
        return MetricsRegistry.merged(snapshots)

    def healthz(self) -> Dict[str, object]:
        """Liveness summary served by the ``/healthz`` endpoint."""
        if self._closed:
            status = "stopped" if not self._handles else "draining"
        else:
            status = "ok"
        uptime = 0.0
        if self._loop is not None and self._started_at is not None:
            uptime = max(0.0, self._loop.time() - self._started_at)
        engine = self.config.resolved_engine()
        return {
            "status": status,
            "uptime_s": uptime,
            "workers": self.config.workers,
            "alive_workers": sum(
                1 for handle in self._handles if handle.process.is_alive()
            ),
            "restarts": self._restarts,
            "shards": self.config.n_shards,
            "queue_depth": len(self._pending),
            "mode": engine.mode,
        }
