"""The public client of the serving stack (sync + asyncio).

:class:`AsyncRangingClient` (and its blocking wrapper
:class:`RangingClient`) is **the** way into ``repro.serve``: hand it a
:class:`~repro.serve.service.ServeConfig` and it builds the right
deployment — the in-process
:class:`~repro.serve.service.RangingService` when ``workers == 0``, the
supervised multi-process
:class:`~repro.serve.supervisor.RangingServer` when ``workers >= 1`` —
behind one submit surface.  Loadgen, the CLI, the live swarm-ingest
path, and the test suites all go through it, so the single-process and
multi-process deployments stay behaviourally interchangeable by
construction.

Both rejection causes (:class:`~repro.serve.request.RateLimitedError`,
:class:`~repro.serve.request.ServiceOverloadedError`) carry
``retry_after_s``; :meth:`AsyncRangingClient.submit_retrying` honours it
with bounded attempts, which is the polite-client loop every built-in
caller uses.  Note that in the multi-process deployment a rejection can
surface on the *awaited future* rather than at ``enqueue`` time (the
worker's own admission control answered with a retry-after frame) — the
retrying helper handles both.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from repro.runtime.metrics import MetricsRegistry
from repro.serve.request import (
    RangingOutcome,
    RangingRequest,
    ServiceRejectedError,
)
from repro.serve.service import RangingService, ServeConfig
from repro.serve.supervisor import RangingServer

__all__ = ["AsyncRangingClient", "RangingClient"]

#: Floor on retry sleeps so a zero hint cannot busy-spin the loop.
_MIN_RETRY_SLEEP_S = 0.001


class AsyncRangingClient:
    """Asyncio client that owns (or wraps) a serving deployment.

    Parameters
    ----------
    config:
        Deployment description; ``config.workers`` picks in-process vs
        multi-process.  Mutually exclusive with ``service``.
    service:
        An already-started deployment (``RangingService`` or
        ``RangingServer``) to submit through without owning its
        lifecycle — ``close`` then leaves it running.
    metrics:
        Optional registry handed to an owned deployment.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        service: Union[RangingService, RangingServer, None] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if (config is None) == (service is None):
            raise ValueError(
                "pass exactly one of config= (client owns the "
                "deployment) or service= (client wraps a running one)"
            )
        self._config = config
        self._owned = service is None
        self._deployment: Union[RangingService, RangingServer, None] = (
            service
        )
        self._metrics = metrics
        self._sequences: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "AsyncRangingClient":
        if self._owned:
            assert self._config is not None
            if self._config.workers >= 1:
                self._deployment = RangingServer(
                    self._config, metrics=self._metrics
                )
            else:
                self._deployment = RangingService.build(
                    self._config, metrics=self._metrics
                )
            await self._deployment.start()
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop an owned deployment (no-op when wrapping an external one)."""
        if self._owned and self._deployment is not None:
            await self._deployment.stop(drain=drain)

    async def __aenter__(self) -> "AsyncRangingClient":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- submission ----------------------------------------------------------

    @property
    def deployment(self) -> Union[RangingService, RangingServer]:
        if self._deployment is None:
            raise RuntimeError("client is not started")
        return self._deployment

    def enqueue(
        self, request: RangingRequest
    ) -> "asyncio.Future[RangingOutcome]":
        """Admit without awaiting; same exceptions as the deployment."""
        return self.deployment.enqueue(request)

    async def submit(self, request: RangingRequest) -> RangingOutcome:
        """One request, one awaited terminal outcome (no retries)."""
        return await self.deployment.submit(request)

    async def submit_retrying(
        self, request: RangingRequest, max_attempts: int = 8
    ) -> RangingOutcome:
        """Submit with bounded retry-after-honouring retries.

        Retries on both rejection causes, whether they surface at
        admission or on the awaited future (worker-side admission in
        the multi-process deployment).  The final attempt's rejection
        propagates.
        """
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        for attempt in range(max_attempts):
            try:
                return await self.deployment.submit(request)
            except ServiceRejectedError as error:
                if attempt == max_attempts - 1:
                    raise
                await asyncio.sleep(
                    max(error.retry_after_s, _MIN_RETRY_SLEEP_S)
                )
        raise AssertionError("unreachable")

    async def range(
        self,
        session_id: str,
        cir: "np.ndarray",
        noise_std: float = 0.0,
        deadline_s: Optional[float] = None,
        annotations: Optional[Mapping[str, Any]] = None,
    ) -> RangingOutcome:
        """Convenience submit with an auto-assigned per-session sequence."""
        sequence = self._sequences.get(session_id, 0)
        self._sequences[session_id] = sequence + 1
        return await self.submit_retrying(
            RangingRequest(
                session_id=session_id,
                sequence=sequence,
                cir=cir,
                noise_std=noise_std,
                deadline_s=deadline_s,
                annotations=annotations,
            )
        )

    # -- introspection -------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self.deployment.metrics

    @property
    def pending(self) -> int:
        return self.deployment.pending

    def healthz(self) -> Dict[str, object]:
        return self.deployment.healthz()


class RangingClient:
    """Blocking facade over :class:`AsyncRangingClient`.

    Runs a private event loop on a daemon thread and bridges every call
    with ``run_coroutine_threadsafe`` — the entry point for synchronous
    callers (scripts, notebooks, the swarm simulator's live-ingest
    path).  Use as a context manager::

        with RangingClient(ServeConfig(engine=..., workers=4)) as client:
            outcome = client.range("session-0", cir, noise_std=0.1)
    """

    def __init__(
        self,
        config: ServeConfig,
        metrics: Optional[MetricsRegistry] = None,
        start_timeout_s: float = 60.0,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-serve-client",
            daemon=True,
        )
        self._thread.start()
        self._async = AsyncRangingClient(config, metrics=metrics)
        self._closed = False
        try:
            self._call(self._async.start(), timeout=start_timeout_s)
        except BaseException:
            self._shutdown_loop()
            raise

    def _call(self, coro, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    # -- submission ----------------------------------------------------------

    def submit(
        self, request: RangingRequest, timeout: Optional[float] = None
    ) -> RangingOutcome:
        """One request, blocking until its terminal outcome."""
        return self._call(self._async.submit(request), timeout=timeout)

    def submit_many(
        self,
        requests: Iterable[RangingRequest],
        max_attempts: int = 8,
        timeout: Optional[float] = None,
    ) -> List[RangingOutcome]:
        """Submit a batch concurrently (with retries), preserving order."""
        request_list = list(requests)

        async def _many() -> List[RangingOutcome]:
            return list(
                await asyncio.gather(
                    *(
                        self._async.submit_retrying(request, max_attempts)
                        for request in request_list
                    )
                )
            )

        return self._call(_many(), timeout=timeout)

    def range(
        self,
        session_id: str,
        cir: "np.ndarray",
        noise_std: float = 0.0,
        deadline_s: Optional[float] = None,
        annotations: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> RangingOutcome:
        """Blocking convenience submit with auto per-session sequencing."""
        return self._call(
            self._async.range(
                session_id,
                cir,
                noise_std=noise_std,
                deadline_s=deadline_s,
                annotations=annotations,
            ),
            timeout=timeout,
        )

    # -- lifecycle / introspection -------------------------------------------

    def close(self, drain: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self._async.close(drain=drain), timeout=120.0)
        finally:
            self._shutdown_loop()

    def __enter__(self) -> "RangingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def metrics(self) -> MetricsRegistry:
        return self._async.metrics

    def healthz(self) -> Dict[str, object]:
        return self._call(self._async_healthz())

    async def _async_healthz(self) -> Dict[str, object]:
        return self._async.healthz()
