"""Cooperative localization: joint position estimation over a graph.

The paper's future work names "an efficient cooperative *or*
anchor-based localization system"; :mod:`repro.localization.anchors`
covers the anchor-based half, this module the cooperative half.  Tags
measure ranges not only to anchors but also to *each other* (each tag's
concurrent-ranging round picks up every responding neighbour), and all
unknown positions are solved jointly: inter-tag ranges couple the
estimates, so tags with poor anchor geometry borrow information from
better-placed neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.channel.geometry import Point

MAX_ITERATIONS = 100
CONVERGENCE_M = 1e-6


@dataclass(frozen=True)
class RangeMeasurement:
    """One measured distance between two nodes (either may be a tag)."""

    node_a: int
    node_b: int
    distance_m: float

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError(f"self-range on node {self.node_a}")
        if self.distance_m < 0:
            raise ValueError(f"negative range {self.distance_m}")


@dataclass(frozen=True)
class CooperativeResult:
    """Joint solution for all unknown nodes."""

    positions: Dict[int, Point]
    iterations: int
    converged: bool
    rms_residual_m: float


def _node_position(
    node: int,
    anchors: Dict[int, Point],
    estimates: Dict[int, np.ndarray],
) -> np.ndarray:
    if node in anchors:
        return np.array([anchors[node].x, anchors[node].y])
    return estimates[node]


def solve_cooperative(
    anchors: Dict[int, Point],
    measurements: Sequence[RangeMeasurement],
    unknowns: Sequence[int],
    initial: Dict[int, Point] | None = None,
) -> CooperativeResult:
    """Jointly estimate all unknown node positions by Gauss-Newton.

    Parameters
    ----------
    anchors:
        Known positions keyed by node id.
    measurements:
        Ranges between any two nodes; measurements between two anchors
        are ignored (they carry no information about the unknowns).
    unknowns:
        Node ids to solve for.  Every unknown must appear in at least
        two measurements for the 2-D problem to be (locally) solvable.
    initial:
        Optional starting positions; default is the anchor centroid,
        jittered slightly per node so co-initialised tags can separate.

    Raises
    ------
    ValueError
        On unknown/anchor id overlap, missing measurements, or an
        unknown mentioned in no measurement.
    """
    unknowns = list(unknowns)
    if not unknowns:
        raise ValueError("no unknown nodes to solve for")
    overlap = set(unknowns) & set(anchors)
    if overlap:
        raise ValueError(f"nodes {sorted(overlap)} are both anchor and unknown")
    useful = [
        m
        for m in measurements
        if m.node_a in unknowns or m.node_b in unknowns
    ]
    if not useful:
        raise ValueError("no measurement involves an unknown node")
    mentioned = {m.node_a for m in useful} | {m.node_b for m in useful}
    missing = [u for u in unknowns if u not in mentioned]
    if missing:
        raise ValueError(f"unknown nodes {missing} appear in no measurement")
    for m in useful:
        for node in (m.node_a, m.node_b):
            if node not in anchors and node not in unknowns:
                raise ValueError(
                    f"measurement references node {node} that is neither "
                    "anchor nor unknown"
                )

    if anchors:
        centroid = np.array(
            [
                np.mean([p.x for p in anchors.values()]),
                np.mean([p.y for p in anchors.values()]),
            ]
        )
    else:
        centroid = np.zeros(2)
    estimates: Dict[int, np.ndarray] = {}
    for i, node in enumerate(unknowns):
        if initial is not None and node in initial:
            estimates[node] = np.array([initial[node].x, initial[node].y])
        else:
            # Deterministic per-node jitter so identical starts separate.
            angle = 2.0 * np.pi * i / max(len(unknowns), 1)
            estimates[node] = centroid + 0.5 * np.array(
                [np.cos(angle), np.sin(angle)]
            )

    index_of = {node: i for i, node in enumerate(unknowns)}
    n_params = 2 * len(unknowns)

    converged = False
    iteration = 0
    for iteration in range(1, MAX_ITERATIONS + 1):
        residuals = np.zeros(len(useful))
        jacobian = np.zeros((len(useful), n_params))
        for row, m in enumerate(useful):
            pa = _node_position(m.node_a, anchors, estimates)
            pb = _node_position(m.node_b, anchors, estimates)
            delta = pa - pb
            predicted = max(float(np.linalg.norm(delta)), 1e-9)
            residuals[row] = m.distance_m - predicted
            gradient = delta / predicted
            if m.node_a in index_of:
                jacobian[row, 2 * index_of[m.node_a] : 2 * index_of[m.node_a] + 2] = (
                    gradient
                )
            if m.node_b in index_of:
                jacobian[row, 2 * index_of[m.node_b] : 2 * index_of[m.node_b] + 2] = (
                    -gradient
                )
        try:
            step, *_ = np.linalg.lstsq(jacobian, -residuals, rcond=None)
        except np.linalg.LinAlgError:
            break
        for node, i in index_of.items():
            estimates[node] = estimates[node] - step[2 * i : 2 * i + 2]
        if np.linalg.norm(step) < CONVERGENCE_M:
            converged = True
            break

    final_residuals = []
    for m in useful:
        pa = _node_position(m.node_a, anchors, estimates)
        pb = _node_position(m.node_b, anchors, estimates)
        final_residuals.append(m.distance_m - float(np.linalg.norm(pa - pb)))
    rms = float(np.sqrt(np.mean(np.square(final_residuals))))
    return CooperativeResult(
        positions={
            node: Point(float(p[0]), float(p[1]))
            for node, p in estimates.items()
        },
        iterations=iteration,
        converged=converged,
        rms_residual_m=rms,
    )
