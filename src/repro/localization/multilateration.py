"""Position estimation from anchor distances.

Gauss-Newton nonlinear least squares over the range residuals, with an
optional Huber-weighted robust variant that tolerates one or two grossly
wrong ranges (e.g. a responder whose ID was mis-decoded or whose direct
path was blocked).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.channel.geometry import Point

#: Convergence threshold on the position update [m].
CONVERGENCE_M = 1e-6

#: Default Huber clipping width [m] for the robust variant.
HUBER_DELTA_M = 0.5

MAX_ITERATIONS = 50


@dataclass(frozen=True)
class MultilaterationResult:
    """Estimated position plus fit diagnostics."""

    position: Point
    residuals_m: tuple
    iterations: int
    converged: bool

    @property
    def rms_residual_m(self) -> float:
        res = np.asarray(self.residuals_m)
        return float(np.sqrt(np.mean(res**2))) if len(res) else 0.0


def _initial_guess(anchors: Sequence[Point]) -> np.ndarray:
    """Centroid of the anchors — a safe, geometry-agnostic start."""
    xs = np.array([a.x for a in anchors])
    ys = np.array([a.y for a in anchors])
    return np.array([xs.mean(), ys.mean()])


def _gauss_newton(
    anchors: Sequence[Point],
    distances_m: Sequence[float],
    weights_fn,
    initial: np.ndarray | None,
) -> MultilaterationResult:
    positions = np.array([[a.x, a.y] for a in anchors], dtype=float)
    measured = np.asarray(distances_m, dtype=float)
    estimate = (
        initial.copy() if initial is not None else _initial_guess(anchors)
    )

    converged = False
    iteration = 0
    for iteration in range(1, MAX_ITERATIONS + 1):
        deltas = estimate[None, :] - positions
        predicted = np.linalg.norm(deltas, axis=1)
        predicted = np.maximum(predicted, 1e-9)
        residuals = measured - predicted
        weights = weights_fn(residuals)
        # Jacobian of predicted distance wrt position.
        jacobian = deltas / predicted[:, None]
        w = np.sqrt(weights)
        try:
            step, *_ = np.linalg.lstsq(
                jacobian * w[:, None], -residuals * w, rcond=None
            )
        except np.linalg.LinAlgError:
            break
        estimate = estimate - step
        if np.linalg.norm(step) < CONVERGENCE_M:
            converged = True
            break

    deltas = estimate[None, :] - positions
    final_residuals = measured - np.linalg.norm(deltas, axis=1)
    return MultilaterationResult(
        position=Point(float(estimate[0]), float(estimate[1])),
        residuals_m=tuple(float(r) for r in final_residuals),
        iterations=iteration,
        converged=converged,
    )


def multilaterate(
    anchors: Sequence[Point],
    distances_m: Sequence[float],
    initial: Point | None = None,
) -> MultilaterationResult:
    """Least-squares position from >= 3 anchor distances.

    Raises ``ValueError`` with fewer than three anchors (the 2-D problem
    is under-determined) or mismatched input lengths.
    """
    if len(anchors) != len(distances_m):
        raise ValueError(
            f"{len(anchors)} anchors but {len(distances_m)} distances"
        )
    if len(anchors) < 3:
        raise ValueError(
            f"2-D multilateration needs >= 3 anchors, got {len(anchors)}"
        )
    if any(d < 0 for d in distances_m):
        raise ValueError("distances must be non-negative")
    start = np.array([initial.x, initial.y]) if initial is not None else None
    return _gauss_newton(
        anchors, distances_m, lambda r: np.ones_like(r), start
    )


def multilaterate_robust(
    anchors: Sequence[Point],
    distances_m: Sequence[float],
    initial: Point | None = None,
    huber_delta_m: float = HUBER_DELTA_M,
) -> MultilaterationResult:
    """Huber-weighted multilateration.

    Residuals beyond ``huber_delta_m`` are down-weighted (IRLS), which
    keeps one badly wrong range (mis-identified responder, NLOS bias)
    from dragging the fix.
    """
    if huber_delta_m <= 0:
        raise ValueError(f"huber_delta_m must be positive, got {huber_delta_m}")
    if len(anchors) != len(distances_m):
        raise ValueError(
            f"{len(anchors)} anchors but {len(distances_m)} distances"
        )
    if len(anchors) < 3:
        raise ValueError(
            f"2-D multilateration needs >= 3 anchors, got {len(anchors)}"
        )

    def huber_weights(residuals: np.ndarray) -> np.ndarray:
        magnitude = np.abs(residuals)
        weights = np.ones_like(magnitude)
        outliers = magnitude > huber_delta_m
        weights[outliers] = huber_delta_m / magnitude[outliers]
        return weights

    start = np.array([initial.x, initial.y]) if initial is not None else None
    return _gauss_newton(anchors, distances_m, huber_weights, start)


def gdop(anchors: Sequence[Point], position: Point) -> float:
    """Geometric dilution of precision of an anchor layout at a point.

    Smaller is better; values explode when the anchors are (nearly)
    collinear as seen from the position.
    """
    if len(anchors) < 3:
        raise ValueError(f"GDOP needs >= 3 anchors, got {len(anchors)}")
    rows = []
    for anchor in anchors:
        dx = position.x - anchor.x
        dy = position.y - anchor.y
        r = math.hypot(dx, dy)
        if r < 1e-9:
            raise ValueError("position coincides with an anchor")
        rows.append([dx / r, dy / r])
    geometry = np.asarray(rows)
    try:
        covariance = np.linalg.inv(geometry.T @ geometry)
    except np.linalg.LinAlgError:
        return float("inf")
    return float(math.sqrt(np.trace(covariance)))
