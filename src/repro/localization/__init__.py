"""Anchor-based localization on top of concurrent ranging.

The paper's stated future work: "use concurrent ranging to build an
efficient cooperative or anchor-based localization system".  This
subpackage implements the anchor-based variant: a mobile tag initiates a
single concurrent ranging round towards fixed anchors and multilaterates
its own position from the decoded (anchor ID, distance) pairs.
"""

from repro.localization.multilateration import (
    multilaterate,
    multilaterate_robust,
    MultilaterationResult,
    gdop,
)
from repro.localization.anchors import AnchorNetwork, PositionFix
from repro.localization.tracking import ConstantVelocityTracker, TrackState
from repro.localization.cooperative import (
    RangeMeasurement,
    CooperativeResult,
    solve_cooperative,
)

__all__ = [
    "multilaterate",
    "multilaterate_robust",
    "MultilaterationResult",
    "gdop",
    "AnchorNetwork",
    "PositionFix",
    "RangeMeasurement",
    "CooperativeResult",
    "solve_cooperative",
    "ConstantVelocityTracker",
    "TrackState",
]
