"""Constant-velocity Kalman tracking over concurrent-ranging fixes.

A mobile tag produces one position fix per concurrent-ranging round;
consecutive fixes are physically correlated through the tag's motion.
This module adds the standard constant-velocity Kalman filter a deployed
localization system would run on top of the per-round fixes, smoothing
the centimetre-scale measurement noise (and riding out occasional bad
fixes when gating is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.channel.geometry import Point

#: Default process noise: white acceleration with this std [m/s^2].
DEFAULT_ACCEL_STD = 0.5

#: Default measurement noise std of one concurrent-ranging fix [m].
DEFAULT_MEASUREMENT_STD = 0.08

#: Innovation gate in Mahalanobis sigmas; measurements farther out are
#: rejected as bad fixes (mis-identified anchor, NLOS bias).
DEFAULT_GATE_SIGMA = 4.0


@dataclass(frozen=True)
class TrackState:
    """Filtered kinematic state at one update."""

    position: Point
    velocity: tuple
    time_s: float
    accepted: bool

    @property
    def speed_mps(self) -> float:
        return float(np.hypot(*self.velocity))


class ConstantVelocityTracker:
    """2-D constant-velocity Kalman filter over position fixes."""

    def __init__(
        self,
        accel_std: float = DEFAULT_ACCEL_STD,
        measurement_std: float = DEFAULT_MEASUREMENT_STD,
        gate_sigma: float = DEFAULT_GATE_SIGMA,
    ) -> None:
        if accel_std <= 0 or measurement_std <= 0:
            raise ValueError("noise parameters must be positive")
        if gate_sigma <= 0:
            raise ValueError("gate must be positive")
        self.accel_std = float(accel_std)
        self.measurement_std = float(measurement_std)
        self.gate_sigma = float(gate_sigma)
        self._state: np.ndarray | None = None  # [x, y, vx, vy]
        self._covariance: np.ndarray | None = None
        self._last_time: float | None = None

    @property
    def initialized(self) -> bool:
        return self._state is not None

    def _transition(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        f = np.eye(4)
        f[0, 2] = f[1, 3] = dt
        # White-acceleration process noise.
        q_scalar = self.accel_std**2
        g = np.array([[0.5 * dt**2, 0], [0, 0.5 * dt**2], [dt, 0], [0, dt]])
        q = q_scalar * (g @ g.T)
        return f, q

    def update(self, measurement: Point, time_s: float) -> TrackState:
        """Fold one position fix into the track.

        The first call initialises the filter at the measurement with
        zero velocity and large uncertainty.  Later calls predict to the
        measurement time, gate the innovation, and correct.
        """
        z = np.array([measurement.x, measurement.y])
        r = self.measurement_std**2 * np.eye(2)
        h = np.zeros((2, 4))
        h[0, 0] = h[1, 1] = 1.0

        if self._state is None:
            self._state = np.array([z[0], z[1], 0.0, 0.0])
            self._covariance = np.diag(
                [r[0, 0], r[1, 1], 4.0, 4.0]
            )
            self._last_time = time_s
            return self._snapshot(time_s, accepted=True)

        dt = time_s - self._last_time
        if dt < 0:
            raise ValueError(
                f"measurements must be time-ordered (dt = {dt})"
            )
        f, q = self._transition(dt)
        state = f @ self._state
        covariance = f @ self._covariance @ f.T + q

        innovation = z - h @ state
        s = h @ covariance @ h.T + r
        mahalanobis = float(np.sqrt(innovation @ np.linalg.solve(s, innovation)))
        accepted = mahalanobis <= self.gate_sigma
        if accepted:
            gain = covariance @ h.T @ np.linalg.inv(s)
            state = state + gain @ innovation
            covariance = (np.eye(4) - gain @ h) @ covariance

        self._state = state
        self._covariance = covariance
        self._last_time = time_s
        return self._snapshot(time_s, accepted=accepted)

    def _snapshot(self, time_s: float, accepted: bool) -> TrackState:
        return TrackState(
            position=Point(float(self._state[0]), float(self._state[1])),
            velocity=(float(self._state[2]), float(self._state[3])),
            time_s=time_s,
            accepted=accepted,
        )

    def track(
        self, measurements: List[Point], interval_s: float = 0.1
    ) -> List[TrackState]:
        """Filter a uniformly-sampled sequence of fixes."""
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        return [
            self.update(m, i * interval_s) for i, m in enumerate(measurements)
        ]
