"""An anchor network localising a mobile tag via concurrent ranging.

The tag is the *initiator*: one broadcast, one aggregate response, and it
knows its distance to every identified anchor — then multilaterates.
This is the paper's envisioned use: position updates at the cost of two
radio operations instead of ``2 * (N_anchors)`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.channel.geometry import Point
from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.localization.multilateration import (
    MultilaterationResult,
    multilaterate_robust,
)
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.signal.templates import TemplateBank


@dataclass(frozen=True)
class PositionFix:
    """One position estimate plus its provenance."""

    estimate: Point
    true_position: Point
    anchors_used: int
    fit: MultilaterationResult

    @property
    def error_m(self) -> float:
        return self.estimate.distance_to(self.true_position)


class AnchorNetwork:
    """Fixed anchors + a movable tag.

    Parameters
    ----------
    anchor_positions:
        Known anchor coordinates (>= 3 for 2-D fixes).
    environment:
        Channel model for all links.
    n_slots / n_shapes:
        Concurrent-ranging scheme dimensions; capacity must cover the
        anchor count.
    compensate_tx_quantization:
        Forwarded to the ranging session (see there); defaults to True
        because localization accuracy is dominated by this artefact on
        real DW1000s.
    """

    def __init__(
        self,
        anchor_positions: Sequence[Point],
        environment: IndoorEnvironment | None = None,
        n_slots: int = 4,
        n_shapes: int | None = None,
        seed: int | None = None,
        compensate_tx_quantization: bool = True,
    ) -> None:
        if len(anchor_positions) < 3:
            raise ValueError(
                "need >= 3 anchors for 2-D localization, got "
                f"{len(anchor_positions)}"
            )
        self.anchor_positions = list(anchor_positions)
        self.rng = np.random.default_rng(seed)
        self.environment = environment or IndoorEnvironment.office()
        if n_shapes is None:
            n_shapes = max(1, -(-len(anchor_positions) // n_slots))  # ceil div
        if n_slots * n_shapes < len(anchor_positions):
            raise ValueError(
                f"{n_slots} slots x {n_shapes} shapes cannot cover "
                f"{len(anchor_positions)} anchors"
            )
        self._n_slots = n_slots
        self._n_shapes = n_shapes
        self._compensate = compensate_tx_quantization

    def _build_session(self, tag_position: Point) -> ConcurrentRangingSession:
        medium = Medium(environment=self.environment, rng=self.rng)
        tag = Node.at(0, tag_position.x, tag_position.y, rng=self.rng)
        anchors = [
            Node.at(i + 1, p.x, p.y, rng=self.rng)
            for i, p in enumerate(self.anchor_positions)
        ]
        medium.add_nodes([tag] + anchors)
        bank = (
            TemplateBank.paper_bank(self._n_shapes)
            if self._n_shapes <= 4
            else TemplateBank.spread(self._n_shapes)
        )
        scheme = CombinedScheme(
            SlotPlan.for_range(20.0, n_slots=self._n_slots), bank
        )
        return ConcurrentRangingSession(
            medium=medium,
            initiator=tag,
            responders=anchors,
            scheme=scheme,
            # Detect a few extra peaks: a near anchor's strong reflection
            # can out-power a far anchor's direct path (paper challenge
            # IV).  Duplicate decodes within a slot resolve to the
            # earliest response — the direct path always precedes its own
            # reflections — and the SNR gate keeps noise out.
            detector_config=SearchAndSubtractConfig(
                max_responses=len(anchors) + 4,
                upsample_factor=8,
                min_peak_snr=5.0,
            ),
            compensate_tx_quantization=self._compensate,
            rng=self.rng,
        )

    def locate(self, tag_position: Point) -> PositionFix:
        """One concurrent ranging round + multilateration at a position."""
        session = self._build_session(tag_position)
        result = session.run_round()

        anchors_used: List[Point] = []
        distances: List[float] = []
        for outcome in result.outcomes:
            if outcome.identified and outcome.estimated_distance_m is not None:
                anchors_used.append(
                    self.anchor_positions[outcome.responder_id]
                )
                distances.append(outcome.estimated_distance_m)
        if len(anchors_used) < 3:
            raise RuntimeError(
                f"only {len(anchors_used)} anchors identified — cannot fix "
                "a 2-D position"
            )
        fit = multilaterate_robust(anchors_used, distances)
        return PositionFix(
            estimate=fit.position,
            true_position=tag_position,
            anchors_used=len(anchors_used),
            fit=fit,
        )

    def track(self, trajectory: Sequence[Point]) -> List[PositionFix]:
        """Localize the tag along a trajectory, one round per waypoint."""
        return [self.locate(p) for p in trajectory]
