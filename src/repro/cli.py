"""Command-line interface: run paper experiments from the shell.

Examples::

    python -m repro list
    python -m repro run table1 --trials 1000
    python -m repro run fig7 sect5
    python -m repro run all --trials 100
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablation_amplitude,
    ablation_bank,
    ablation_detectors,
    ablation_twr,
    ablation_upsampling,
    capacity_stress,
    fig1_bandwidth,
    fig2_cir,
    fig3_timing,
    fig4_detection,
    fig5_pulse_shapes,
    fig6_pulse_id,
    fig7_overlap,
    fig8_combined,
    localization_exp,
    nlos_study,
    sect5_precision,
    sect8_scalability,
    table1_pulse_id,
)

#: name -> (module, accepts-trials?) registry.
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": (fig1_bandwidth, False),
    "fig2": (fig2_cir, False),
    "fig3": (fig3_timing, False),
    "fig4": (fig4_detection, True),
    "fig5": (fig5_pulse_shapes, False),
    "fig6": (fig6_pulse_id, True),
    "fig7": (fig7_overlap, True),
    "fig8": (fig8_combined, True),
    "table1": (table1_pulse_id, True),
    "sect5": (sect5_precision, True),
    "sect8": (sect8_scalability, False),
    "nlos": (nlos_study, True),
    "ablation-detectors": (ablation_detectors, True),
    "ablation-bank": (ablation_bank, True),
    "ablation-amplitude": (ablation_amplitude, True),
    "ablation-twr": (ablation_twr, True),
    "ablation-upsampling": (ablation_upsampling, True),
    "capacity-stress": (capacity_stress, True),
    "localization": (localization_exp, False),
}


def _run_one(name: str, trials: int | None) -> None:
    module, takes_trials = EXPERIMENTS[name]
    if takes_trials and trials is not None:
        result = module.run(trials=trials)
    else:
        result = module.run()
    print(result.render())
    print()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Concurrent "
        "Ranging with Ultra-Wideband Radios' (ICDCS 2018).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    report_parser = subparsers.add_parser(
        "report", help="render experiments into a markdown report"
    )
    report_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all)",
    )
    report_parser.add_argument(
        "--trials", type=int, default=None, help="trial-count override"
    )
    report_parser.add_argument(
        "-o", "--output", default=None,
        help="write to a file instead of stdout",
    )

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trial count for experiments that accept one "
        "(default: each experiment's quick default; the paper's counts "
        "are 1000-5000)",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "report":
        from repro.analysis.reporting import generate_report

        names = args.experiments or None
        try:
            report = generate_report(names=names, trials=args.trials)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (module, takes_trials) in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            flag = " [--trials]" if takes_trials else ""
            print(f"{name.ljust(width)}  {doc}{flag}")
        return 0

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} — "
            f"run 'python -m repro list'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        _run_one(name, args.trials)
    return 0
