"""Command-line interface: run paper experiments from the shell.

Examples::

    python -m repro list
    python -m repro run table1 --trials 1000
    python -m repro run fig7 sect5
    python -m repro run all --trials 100
    python -m repro run table1 --trials 1000 --workers 4 --seed 7

Global execution flags for ``run``:

``--seed SEED``
    Master seed for the Monte-Carlo trial loops.  Experiments ported to
    the :mod:`repro.runtime` executor derive every per-trial random
    stream from it via ``SeedSequence.spawn``, so a fixed seed gives
    bit-identical results at *any* ``--workers`` count.  Defaults to
    each experiment's built-in seed.

``--workers N``
    Trial-loop parallelism (default 1, the historical serial
    behaviour).  ``N >= 2`` dispatches chunks of trials onto a
    ``multiprocessing`` pool; experiments that have not been ported to
    the runtime ignore the flag (a notice is printed).  After a run the
    CLI prints the runtime metrics report: trials/sec, template-bank
    cache hit rate, and total wall-clock time.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.experiments import (
    ablation_amplitude,
    ablation_bank,
    ablation_detectors,
    ablation_twr,
    ablation_upsampling,
    capacity_stress,
    chaos_sweep,
    fig1_bandwidth,
    fig2_cir,
    fig3_timing,
    fig4_detection,
    fig5_pulse_shapes,
    fig6_pulse_id,
    fig7_overlap,
    fig8_combined,
    localization_exp,
    nlos_study,
    sect5_precision,
    sect8_scalability,
    security_study,
    swarm_scale,
    table1_pulse_id,
)

#: name -> (module, accepts-trials?) registry.
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": (fig1_bandwidth, False),
    "fig2": (fig2_cir, True),
    "fig3": (fig3_timing, False),
    "fig4": (fig4_detection, True),
    "fig5": (fig5_pulse_shapes, False),
    "fig6": (fig6_pulse_id, True),
    "fig7": (fig7_overlap, True),
    "fig8": (fig8_combined, True),
    "table1": (table1_pulse_id, True),
    "sect5": (sect5_precision, True),
    "sect8": (sect8_scalability, False),
    "nlos": (nlos_study, True),
    "ablation-detectors": (ablation_detectors, True),
    "ablation-bank": (ablation_bank, True),
    "ablation-amplitude": (ablation_amplitude, True),
    "ablation-twr": (ablation_twr, True),
    "ablation-upsampling": (ablation_upsampling, True),
    "capacity-stress": (capacity_stress, True),
    "localization": (localization_exp, True),
    "chaos": (chaos_sweep, True),
    "security": (security_study, True),
    "swarm": (swarm_scale, True),
}


def _run_one(
    name: str,
    trials: int | None,
    seed: int | None = None,
    workers: int = 1,
    checkpoint: str | None = None,
    batch_size=None,
) -> None:
    """Run one experiment, matching CLI flags against its signature.

    The standard-vocabulary flags (``trials``, ``seed``, ``workers``,
    ``batch_size``, ``checkpoint``) are matched against the
    experiment's ``run()`` by :func:`repro.experiments.common.
    build_run_kwargs`; a note is printed for every flag the experiment
    does not support instead of silently dropping it.
    """
    from repro.experiments.common import build_run_kwargs
    from repro.runtime import MetricsRegistry

    module, _takes_trials = EXPERIMENTS[name]
    metrics = MetricsRegistry()
    kwargs, unsupported = build_run_kwargs(
        module.run,
        trials=trials,
        seed=seed,
        # Only request parallelism/batching when actually asked for, so
        # unported experiments run silently at the defaults.
        workers=workers if workers != 1 else None,
        batch_size=batch_size,
        checkpoint=checkpoint,
        metrics=metrics,
    )
    for flag in unsupported:
        if flag == "metrics":
            continue  # internal plumbing, not a user-facing flag
        if flag == "workers":
            print(
                f"note: {name} has not been ported to the parallel "
                "runtime; running serially",
                file=sys.stderr,
            )
        else:
            print(
                f"note: {name} does not take "
                f"--{flag.replace('_', '-')}; ignoring",
                file=sys.stderr,
            )
    result = module.run(**kwargs)
    print(result.render())
    if "metrics" in kwargs and not metrics.is_empty():
        print()
        print(metrics.render(title=f"runtime metrics — {name}"))
    print()


def _parse_batch_size(value: str):
    """``--batch-size`` values: a positive integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {parsed}"
        )
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Concurrent "
        "Ranging with Ultra-Wideband Radios' (ICDCS 2018).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    report_parser = subparsers.add_parser(
        "report", help="render experiments into a markdown report"
    )
    report_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all)",
    )
    report_parser.add_argument(
        "--trials", type=int, default=None, help="trial-count override"
    )
    report_parser.add_argument(
        "-o", "--output", default=None,
        help="write to a file instead of stdout",
    )

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all'",
    )
    run_parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trial count for experiments that accept one "
        "(default: each experiment's quick default; the paper's counts "
        "are 1000-5000)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed for the trial loops (default: each experiment's "
        "built-in seed); with the parallel runtime the same seed gives "
        "identical results at any --workers count",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel trial workers for runtime-ported experiments "
        "(default: 1, serial)",
    )
    run_parser.add_argument(
        "--batch-size",
        type=_parse_batch_size,
        default=None,
        metavar="B",
        help="trials per engine call for experiments with a batched "
        "engine: an integer, or 'auto' to let the runtime pick a batch "
        "from the workload shape (CIR length, template-bank size, "
        "worker count); other experiments ignore the flag with a note",
    )
    run_parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist per-trial checkpoints to DIR for experiments that "
        "support it; an interrupted run re-invoked with --checkpoint "
        "DIR --resume picks up where it stopped",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: allow reusing checkpoints already in "
        "DIR (results are identical to an uninterrupted run)",
    )

    from repro.serve.loadgen import add_arguments as add_serve_arguments

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the streaming ranging service under a replay stream "
        "with live /metrics + /healthz",
        description="Stand up the repro.serve micro-batching ranging "
        "service, expose /metrics and /healthz, and drive it with a "
        "replayed CIR stream (a self-contained soak; see also "
        "'loadgen').",
    )
    add_serve_arguments(serve_parser)
    # A soak defaults to a visible metrics endpoint and a longer run.
    serve_parser.set_defaults(port=9100, duration=60.0)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="replay CIR ranging streams against an in-process service "
        "and report latency/throughput/accounting",
    )
    add_serve_arguments(loadgen_parser)
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "report":
        from repro.analysis.reporting import generate_report

        names = args.experiments or None
        try:
            report = generate_report(names=names, trials=args.trials)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        else:
            print(report)
        return 0

    if args.command in ("serve", "loadgen"):
        from repro.serve.loadgen import run_from_args

        return run_from_args(args)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (module, takes_trials) in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            flag = " [--trials]" if takes_trials else ""
            print(f"{name.ljust(width)}  {doc}{flag}")
        return 0

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} — "
            "run 'python -m repro list'",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    if args.checkpoint and not args.resume:
        import os

        if os.path.isdir(args.checkpoint) and os.listdir(args.checkpoint):
            print(
                f"checkpoint dir {args.checkpoint!r} is not empty; pass "
                "--resume to continue an interrupted run or choose a "
                "fresh directory",
                file=sys.stderr,
            )
            return 2
    for name in names:
        _run_one(
            name,
            args.trials,
            seed=args.seed,
            workers=args.workers,
            checkpoint=args.checkpoint,
            batch_size=args.batch_size,
        )
    return 0
