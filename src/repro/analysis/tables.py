"""Plain-text result tables.

Every benchmark prints the table/figure it reproduces in the same row
layout as the paper, side by side with the paper's numbers.  This module
is the one place that knows how to format those tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """A small fixed-width ASCII table builder."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._format(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(row)

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value) >= 1000 or (abs(value) < 1e-3 and value != 0.0):
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """The table as a multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        separator = "-+-".join("-" * w for w in widths)
        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append(separator)
        parts.extend(line(row) for row in self._rows)
        return "\n".join(parts)

    def print(self) -> None:
        print(self.render())
