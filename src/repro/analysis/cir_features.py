"""Feature extraction from estimated CIRs.

Small, reusable diagnostics: the noise floor estimate the detectors gate
on, peak-to-noise ratios, leading-edge rise times, and a simple
significant-peak counter used by the Fig. 1 bandwidth comparison (how
many multipath components are resolvable at a given bandwidth).
"""

from __future__ import annotations

from typing import List

import numpy as np


def estimate_noise_std(
    cir: np.ndarray,
    leading_samples: int = 40,
) -> float:
    """Noise standard deviation from the noise-only CIR preroll.

    The DW1000 places the first path well inside the accumulator window,
    so the first taps are noise-only; their RMS estimates the per-tap
    complex noise std (this mirrors how the chip's LDE derives its own
    threshold).
    """
    cir = np.asarray(cir)
    if cir.ndim != 1:
        raise ValueError(f"expected a 1-D CIR, got shape {cir.shape}")
    if not 1 <= leading_samples <= len(cir):
        raise ValueError(
            f"leading_samples must be in [1, {len(cir)}], got {leading_samples}"
        )
    return float(np.sqrt(np.mean(np.abs(cir[:leading_samples]) ** 2)))


def peak_to_noise_ratio(cir: np.ndarray, leading_samples: int = 40) -> float:
    """Peak magnitude over the estimated noise std (linear, not dB)."""
    noise = estimate_noise_std(cir, leading_samples)
    if noise == 0.0:
        return float("inf")
    return float(np.max(np.abs(cir)) / noise)


def rise_time_s(
    cir: np.ndarray,
    sampling_period_s: float,
    low: float = 0.1,
    high: float = 0.9,
) -> float:
    """10-90 % rise time of the strongest pulse's leading edge.

    Steeper edges (higher bandwidth) allow more precise ToF estimation —
    the quantitative version of the paper's Fig. 1b argument.
    """
    if not 0.0 <= low < high <= 1.0:
        raise ValueError(f"need 0 <= low < high <= 1, got {low}, {high}")
    magnitude = np.abs(np.asarray(cir))
    peak_idx = int(np.argmax(magnitude))
    peak = magnitude[peak_idx]
    low_level, high_level = low * peak, high * peak

    t_high = None
    t_low = None
    for idx in range(peak_idx, -1, -1):
        if t_high is None and magnitude[idx] <= high_level:
            t_high = idx
        if magnitude[idx] <= low_level:
            t_low = idx
            break
    if t_low is None or t_high is None:
        return 0.0
    return float((t_high - t_low) * sampling_period_s)


def significant_peaks(
    cir: np.ndarray,
    threshold_fraction: float = 0.25,
    min_separation_samples: int = 2,
) -> List[int]:
    """Indices of local maxima above a fraction of the global peak.

    A deliberately simple resolvability counter: at 900 MHz the paper's
    Fig. 1b scenario yields one peak per multipath component, while at
    50 MHz the components merge into a single hump.
    """
    if not 0.0 < threshold_fraction <= 1.0:
        raise ValueError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    magnitude = np.abs(np.asarray(cir))
    if len(magnitude) < 3:
        return []
    threshold = threshold_fraction * float(magnitude.max())
    peaks: List[int] = []
    for idx in range(1, len(magnitude) - 1):
        if magnitude[idx] < threshold:
            continue
        if magnitude[idx] >= magnitude[idx - 1] and magnitude[idx] > magnitude[idx + 1]:
            if peaks and idx - peaks[-1] < min_separation_samples:
                if magnitude[idx] > magnitude[peaks[-1]]:
                    peaks[-1] = idx
                continue
            peaks.append(idx)
    return peaks
