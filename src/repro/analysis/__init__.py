"""Result analysis: error metrics, CIR features, and ASCII tables."""

from repro.analysis.metrics import (
    rmse,
    mae,
    bias,
    std,
    percentile_error,
    detection_rate,
    identification_rate,
    summarize_errors,
)
from repro.analysis.cir_features import (
    estimate_noise_std,
    peak_to_noise_ratio,
    rise_time_s,
    significant_peaks,
)
from repro.analysis.tables import Table

__all__ = [
    "rmse",
    "mae",
    "bias",
    "std",
    "percentile_error",
    "detection_rate",
    "identification_rate",
    "summarize_errors",
    "estimate_noise_std",
    "peak_to_noise_ratio",
    "rise_time_s",
    "significant_peaks",
    "Table",
]
