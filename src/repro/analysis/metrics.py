"""Error and success-rate metrics used across the experiments."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def _as_errors(
    estimates: Sequence[float], truths: Sequence[float] | float
) -> np.ndarray:
    estimates = np.asarray(estimates, dtype=float)
    truths_arr = np.asarray(truths, dtype=float)
    if truths_arr.ndim == 0:
        truths_arr = np.full_like(estimates, float(truths_arr))
    if estimates.shape != truths_arr.shape:
        raise ValueError(
            f"shape mismatch: {estimates.shape} estimates vs "
            f"{truths_arr.shape} truths"
        )
    if estimates.size == 0:
        raise ValueError("cannot compute metrics over zero samples")
    return estimates - truths_arr


def rmse(estimates: Sequence[float], truths: Sequence[float] | float) -> float:
    """Root-mean-square error."""
    errors = _as_errors(estimates, truths)
    return float(np.sqrt(np.mean(errors**2)))


def mae(estimates: Sequence[float], truths: Sequence[float] | float) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(_as_errors(estimates, truths))))


def bias(estimates: Sequence[float], truths: Sequence[float] | float) -> float:
    """Mean signed error."""
    return float(np.mean(_as_errors(estimates, truths)))


def std(estimates: Sequence[float], truths: Sequence[float] | float) -> float:
    """Standard deviation of the error — the paper's precision metric
    for SS-TWR (Sect. V: sigma_1..sigma_3)."""
    return float(np.std(_as_errors(estimates, truths)))


def percentile_error(
    estimates: Sequence[float],
    truths: Sequence[float] | float,
    q: float = 95.0,
) -> float:
    """q-th percentile of the absolute error."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(np.abs(_as_errors(estimates, truths)), q))


def detection_rate(successes: Iterable[bool]) -> float:
    """Fraction of trials in which all expected responses were found —
    the metric of the paper's Sect. VI comparison."""
    flags = [bool(s) for s in successes]
    if not flags:
        raise ValueError("cannot compute a rate over zero trials")
    return sum(flags) / len(flags)


def identification_rate(successes: Iterable[bool]) -> float:
    """Fraction of trials with a correctly decoded responder ID —
    the metric of the paper's Table I."""
    return detection_rate(successes)


def summarize_errors(
    estimates: Sequence[float], truths: Sequence[float] | float
) -> Dict[str, float]:
    """All headline error statistics in one dictionary."""
    return {
        "n": float(len(np.atleast_1d(estimates))),
        "bias_m": bias(estimates, truths),
        "std_m": std(estimates, truths),
        "rmse_m": rmse(estimates, truths),
        "mae_m": mae(estimates, truths),
        "p95_m": percentile_error(estimates, truths, 95.0),
    }
