"""Physical and DW1000 hardware constants used throughout the library.

All values that originate from the paper or from the Decawave DW1000
datasheet/user manual are annotated with their source.  Times are in
seconds, distances in meters, frequencies in hertz unless a suffix says
otherwise.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Physics
# --------------------------------------------------------------------------

#: Propagation speed of radio waves in air [m/s].  The paper's Eq. 2 uses
#: ``c`` for the speed of propagation in air; the deviation from the vacuum
#: value is far below UWB ranging resolution, so the vacuum value is used.
SPEED_OF_LIGHT = 299_792_458.0

# --------------------------------------------------------------------------
# DW1000 time base (DW1000 User Manual v2.10, quoted in the paper Sect. II)
# --------------------------------------------------------------------------

#: DW1000 system/timestamp clock frequency [Hz]: 499.2 MHz * 128 = 63.8976 GHz.
DW1000_TIMESTAMP_CLOCK_HZ = 63.8976e9

#: Resolution of a DW1000 RX timestamp [s] (one tick of the 63.8976 GHz
#: clock, i.e. ~15.65 ps; the paper quotes 15.65 ps / 4.69 mm).
DW1000_TIMESTAMP_RESOLUTION_S = 1.0 / DW1000_TIMESTAMP_CLOCK_HZ

#: Distance equivalent of one DW1000 timestamp tick [m] (~4.69 mm).
DW1000_TIMESTAMP_RESOLUTION_M = DW1000_TIMESTAMP_RESOLUTION_S * SPEED_OF_LIGHT

#: Number of low-order bits of the delayed-transmit time value that the
#: DW1000 ignores (DW1000 User Manual p. 26, quoted in the paper Sect. III).
DW1000_DELAYED_TX_IGNORED_BITS = 9

#: Granularity of the delayed-transmission start time [s]:
#: 2**9 ticks of the 63.8976 GHz clock ~= 8.013 ns ("approximately 8 ns"
#: in the paper).
DW1000_DELAYED_TX_RESOLUTION_S = (
    (1 << DW1000_DELAYED_TX_IGNORED_BITS) / DW1000_TIMESTAMP_CLOCK_HZ
)

# --------------------------------------------------------------------------
# DW1000 CIR accumulator (paper Sect. VII)
# --------------------------------------------------------------------------

#: Number of CIR taps provided by the DW1000 accumulator at PRF = 64 MHz.
CIR_LENGTH_PRF64 = 1016

#: Number of CIR taps at PRF = 16 MHz.
CIR_LENGTH_PRF16 = 992

#: CIR sampling period [s] at PRF = 64 MHz (paper Sect. VII: 1.0016 ns).
#: One tap is half a chip at 499.2 MHz chipping rate.
CIR_SAMPLING_PERIOD_S = 1.0016e-9

#: Maximum additional response-position-modulation offset [s] that still
#: fits in the CIR (paper Sect. VII: delta_max ~= 1017 ns).
RPM_MAX_OFFSET_S = CIR_LENGTH_PRF64 * CIR_SAMPLING_PERIOD_S

#: Maximum distance offset representable in the CIR [m] (~305 m; the paper
#: rounds to ~307 m).
RPM_MAX_OFFSET_M = RPM_MAX_OFFSET_S * SPEED_OF_LIGHT

# --------------------------------------------------------------------------
# TC_PGDELAY pulse-shaping register (paper Sect. V)
# --------------------------------------------------------------------------

#: Default TC_PGDELAY register value for channel 7 (paper Fig. 5: 0x93).
TC_PGDELAY_DEFAULT = 0x93

#: Highest TC_PGDELAY register value (8-bit register).
TC_PGDELAY_MAX = 0xFF

#: Number of distinct usable pulse shapes: the paper states "up to 108
#: different pulse shapes" starting from the default value 0x93.
NUM_PULSE_SHAPES = TC_PGDELAY_MAX - TC_PGDELAY_DEFAULT  # 108

# --------------------------------------------------------------------------
# Radio currents and supply (paper Sect. I / III)
# --------------------------------------------------------------------------

#: DW1000 current draw in receive mode [A] (paper: "up to 155 mA").
RX_CURRENT_A = 0.155

#: DW1000 current draw in transmit mode [A] (paper: "90 mA").
TX_CURRENT_A = 0.090

#: DW1000 idle current draw [A] (datasheet order of magnitude).
IDLE_CURRENT_A = 0.018

#: Deep-sleep current draw [A].
SLEEP_CURRENT_A = 1e-6

#: Nominal supply voltage [V].
SUPPLY_VOLTAGE_V = 3.3

# --------------------------------------------------------------------------
# IEEE 802.15.4 UWB PHY timing (used to derive the paper's 178.5 us)
# --------------------------------------------------------------------------

#: Fundamental UWB chipping frequency [Hz].
CHIP_FREQUENCY_HZ = 499.2e6

#: Chip duration [s] (~2.0032 ns).
CHIP_DURATION_S = 1.0 / CHIP_FREQUENCY_HZ

#: Preamble symbol duration at PRF = 16 MHz [s]: length-31 code, spreading
#: factor L = 16 -> 31 * 16 chips = 993.59 ns.
PREAMBLE_SYMBOL_PRF16_S = 31 * 16 * CHIP_DURATION_S

#: Preamble symbol duration at PRF = 64 MHz [s]: length-127 code, L = 4
#: -> 127 * 4 chips = 1017.63 ns.
PREAMBLE_SYMBOL_PRF64_S = 127 * 4 * CHIP_DURATION_S

#: Response delay used by the paper's concurrent ranging scheme [s]
#: (Sect. III: 178.5 us minimum + <100 us turnaround + safety gap).
DELTA_RESP_S = 290e-6

#: Experimentally evaluated upper bound for the DW1000 RX->TX turnaround [s]
#: (paper Sect. III: "less than 100 us").
RX_TX_TURNAROUND_S = 100e-6

# --------------------------------------------------------------------------
# Paper reference results (used in EXPERIMENTS.md comparisons)
# --------------------------------------------------------------------------

#: Sect. V: std-dev of SS-TWR error for pulse shapes s1, s2, s3 [m].
PAPER_SIGMA_TWR_M = {"s1": 0.0228, "s2": 0.0221, "s3": 0.0283}

#: Sect. VI: detection rate of both overlapping responses.
PAPER_OVERLAP_DETECTION = {"search_and_subtract": 0.926, "threshold": 0.48}

#: Table I: pulse-shape identification accuracy [%] per distance and shape.
PAPER_TABLE1 = {
    "s2": {6: 99.9, 7: 99.5, 8: 99.8, 9: 100.0, 10: 99.8},
    "s3": {6: 99.2, 7: 99.7, 8: 99.9, 9: 100.0, 10: 100.0},
}

#: Sect. III: minimum response delay at DR=6.8 Mbps, PRF=64 MHz, PSR=128 [s].
PAPER_MIN_DELTA_RESP_S = 178.5e-6
