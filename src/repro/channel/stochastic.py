"""Stochastic channel realisations for Monte-Carlo experiments.

Two generators are provided:

* :class:`SalehValenzuelaModel` — the classical cluster/ray model behind
  the IEEE 802.15.4a UWB channel models, for users who want standard
  parametrisations.
* :class:`IndoorEnvironment` — a compact office/hallway abstraction used
  by the paper-reproduction experiments: a (possibly attenuated) LOS tap,
  a handful of specular reflections with random excess delays, and a
  diffuse exponential tail.  Its defaults are tuned to the environments
  the paper measures in (hallway with 3–10 m links, office with strong
  wall reflections).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.channel.cir import (
    ChannelRealization,
    ChannelTap,
    DIFFUSE_DECAY_NS,
    diffuse_tail_taps,
)
from repro.channel.propagation import PathLossModel, propagation_delay_s
from repro.channel.geometry import CHANNEL7_CARRIER_HZ


def _random_phasor(rng: np.random.Generator) -> complex:
    """A unit-magnitude complex number with uniform random phase."""
    return complex(np.exp(1j * rng.uniform(0.0, 2.0 * math.pi)))


@dataclass
class SalehValenzuelaModel:
    """Saleh–Valenzuela cluster/ray channel generator.

    Parameters follow the classical formulation: clusters arrive as a
    Poisson process with rate ``cluster_rate``; rays within a cluster
    arrive with rate ``ray_rate``; mean powers decay exponentially with
    cluster constant ``cluster_decay_ns`` and ray constant
    ``ray_decay_ns``.  Defaults approximate the 802.15.4a CM1
    (residential LOS) parametrisation.
    """

    cluster_rate_per_ns: float = 0.047
    ray_rate_per_ns: float = 1.54
    cluster_decay_ns: float = 22.6
    ray_decay_ns: float = 12.5
    max_excess_delay_ns: float = 120.0

    def realize(
        self,
        distance_m: float,
        rng: np.random.Generator,
        path_loss: PathLossModel | None = None,
    ) -> ChannelRealization:
        """Draw one channel realization at a link distance.

        The first ray of the first cluster is the direct path; all taps
        are scaled so total power equals the path-loss power at
        ``distance_m``.
        """
        if path_loss is None:
            path_loss = PathLossModel.log_distance(CHANNEL7_CARRIER_HZ)
        base_delay = propagation_delay_s(distance_m)
        link_gain = path_loss.sample_amplitude_gain(distance_m, rng)

        taps: List[ChannelTap] = []
        cluster_start_ns = 0.0
        first = True
        while cluster_start_ns < self.max_excess_delay_ns:
            cluster_power = math.exp(-cluster_start_ns / self.cluster_decay_ns)
            ray_ns = 0.0
            while cluster_start_ns + ray_ns < self.max_excess_delay_ns:
                mean_power = cluster_power * math.exp(-ray_ns / self.ray_decay_ns)
                # Rayleigh amplitude around the exponential mean power.
                amplitude = math.sqrt(
                    rng.exponential(mean_power)
                ) * _random_phasor(rng)
                kind = "los" if first else "reflection"
                taps.append(
                    ChannelTap(
                        delay_s=base_delay + (cluster_start_ns + ray_ns) * 1e-9,
                        amplitude=amplitude,
                        kind=kind,
                        order=0 if first else 1,
                    )
                )
                first = False
                ray_ns += rng.exponential(1.0 / self.ray_rate_per_ns)
            cluster_start_ns += rng.exponential(1.0 / self.cluster_rate_per_ns)

        total = math.sqrt(sum(tap.power for tap in taps))
        scale = link_gain / total if total > 0 else 0.0
        return ChannelRealization(tap.scaled(scale) for tap in taps)


@dataclass
class IndoorEnvironment:
    """Compact indoor channel generator used by the paper experiments.

    One realization consists of:

    * a LOS tap at the geometric delay, carrying ``k_factor`` of the
      combined specular power (Rician-style LOS dominance),
    * ``n_reflections`` specular taps at exponentially distributed excess
      delays (mean ``reflection_excess_ns``) sharing the remaining
      specular power (earlier reflections stronger),
    * a diffuse tail holding ``diffuse_power_ratio`` of the LOS power.

    ``los_attenuation`` below 1.0 creates the paper's challenge-IV
    situation where a reflection can out-power the direct path.
    """

    k_factor_db: float = 7.0
    n_reflections: int = 4
    reflection_excess_ns: float = 12.0
    diffuse_power_ratio: float = 0.15
    diffuse_decay_ns: float = DIFFUSE_DECAY_NS
    los_attenuation: float = 1.0
    path_loss: PathLossModel = field(
        default_factory=lambda: PathLossModel.log_distance(CHANNEL7_CARRIER_HZ)
    )

    def __post_init__(self) -> None:
        if self.n_reflections < 0:
            raise ValueError("n_reflections must be non-negative")
        if not 0.0 <= self.los_attenuation <= 1.0:
            raise ValueError("los_attenuation is an amplitude factor in [0, 1]")
        if self.diffuse_power_ratio < 0.0:
            raise ValueError("diffuse_power_ratio must be non-negative")

    @classmethod
    def hallway(cls) -> "IndoorEnvironment":
        """Long corridor: strong LOS, few but long-delay reflections.

        Matches the paper's Sect. III/IV measurement setting.
        """
        return cls(
            k_factor_db=14.0,
            n_reflections=3,
            reflection_excess_ns=18.0,
            diffuse_power_ratio=0.05,
        )

    @classmethod
    def office(cls) -> "IndoorEnvironment":
        """Furnished office: moderate LOS dominance, dense reflections.

        Matches the paper's Sect. V/VI measurement setting.
        """
        return cls(
            k_factor_db=7.0,
            n_reflections=5,
            reflection_excess_ns=10.0,
            diffuse_power_ratio=0.20,
        )

    @classmethod
    def multipath_rich(cls) -> "IndoorEnvironment":
        """Cluttered environment with a weak direct path — the
        challenge-IV stress case where MPCs rival the LOS."""
        return cls(
            k_factor_db=2.0,
            n_reflections=7,
            reflection_excess_ns=8.0,
            diffuse_power_ratio=0.35,
            los_attenuation=0.6,
        )

    @classmethod
    def nlos(cls) -> "IndoorEnvironment":
        """Blocked direct path (future-work scenario of the paper)."""
        return cls(
            k_factor_db=0.0,
            n_reflections=6,
            reflection_excess_ns=10.0,
            diffuse_power_ratio=0.40,
            los_attenuation=0.15,
        )

    def realize(
        self,
        distance_m: float,
        rng: np.random.Generator,
    ) -> ChannelRealization:
        """Draw one channel realization at a link distance."""
        base_delay = propagation_delay_s(distance_m)
        link_gain = self.path_loss.sample_amplitude_gain(distance_m, rng)

        k_linear = 10.0 ** (self.k_factor_db / 10.0)
        los_power = k_linear / (1.0 + k_linear)
        reflections_power = 1.0 / (1.0 + k_linear)

        taps: List[ChannelTap] = [
            ChannelTap(
                delay_s=base_delay,
                amplitude=math.sqrt(los_power)
                * self.los_attenuation
                * link_gain
                * _random_phasor(rng),
                kind="los",
                order=0,
            )
        ]

        if self.n_reflections > 0:
            excess = np.sort(
                rng.exponential(self.reflection_excess_ns, self.n_reflections)
            )
            # Earlier reflections carry more power: exponential split.
            weights = np.exp(-excess / max(self.reflection_excess_ns, 1e-9))
            weights = weights / weights.sum() * reflections_power
            for excess_ns, weight in zip(excess, weights):
                # Enforce a minimum excess so reflections never precede LOS.
                delay = base_delay + max(float(excess_ns), 0.5) * 1e-9
                taps.append(
                    ChannelTap(
                        delay_s=delay,
                        amplitude=math.sqrt(float(weight))
                        * link_gain
                        * _random_phasor(rng),
                        kind="reflection",
                        order=1,
                    )
                )

        diffuse_power = self.diffuse_power_ratio * los_power * link_gain**2
        taps.extend(
            diffuse_tail_taps(
                onset_delay_s=base_delay + 1e-9,
                total_power=diffuse_power,
                rng=rng,
                decay_ns=self.diffuse_decay_ns,
            )
        )
        return ChannelRealization(taps)
