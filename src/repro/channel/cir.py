"""Tapped-delay-line channel model (paper Eq. 1).

The paper models the channel impulse response as

    h(t) = sum_k alpha_k * delta(t - tau_k) + nu(t)

with ``alpha_k``/``tau_k`` the complex amplitude and path delay of the
deterministic multipath components (specular reflections) and ``nu(t)``
the diffuse multipath.  :class:`ChannelRealization` holds one concrete
set of taps and can *render* the band-limited waveform a receiver sees
when a given pulse is transmitted through it — which is exactly the
physical signal the DW1000's CIR accumulator estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.signal.pulses import Pulse
from repro.signal.sampling import place_pulse

#: Default exponential decay constant of the diffuse tail [ns].  Kulmer et
#: al. (paper ref. [8]) report diffuse decay constants of ~20 ns for the
#: office environments the paper measures in.
DIFFUSE_DECAY_NS = 20.0

#: Valid tap kinds, ordered roughly by determinism.
TAP_KINDS = ("los", "reflection", "diffuse")


@dataclass(frozen=True)
class ChannelTap:
    """One multipath component: a delayed, complex-scaled copy of the pulse.

    Attributes
    ----------
    delay_s:
        Path delay ``tau_k`` relative to the transmit instant.
    amplitude:
        Complex amplitude ``alpha_k`` (linear scale, not dB).
    kind:
        ``"los"`` for the direct path, ``"reflection"`` for specular
        (deterministic) components, ``"diffuse"`` for the random tail.
    order:
        Reflection order (0 for LOS, 1 for first-order reflections, ...).
    """

    delay_s: float
    amplitude: complex
    kind: str = "reflection"
    order: int = 1

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"tap delay must be non-negative, got {self.delay_s}")
        if self.kind not in TAP_KINDS:
            raise ValueError(f"unknown tap kind {self.kind!r}; use one of {TAP_KINDS}")
        if self.order < 0:
            raise ValueError(f"reflection order must be >= 0, got {self.order}")

    @property
    def path_length_m(self) -> float:
        """Geometric path length implied by the delay."""
        from repro.constants import SPEED_OF_LIGHT

        return self.delay_s * SPEED_OF_LIGHT

    @property
    def power(self) -> float:
        """Tap power ``|alpha_k|^2``."""
        return abs(self.amplitude) ** 2

    def delayed(self, extra_delay_s: float) -> "ChannelTap":
        """A copy of this tap shifted later in time (used to compose the
        round-trip channel of a concurrent-ranging response)."""
        return ChannelTap(
            delay_s=self.delay_s + extra_delay_s,
            amplitude=self.amplitude,
            kind=self.kind,
            order=self.order,
        )

    def scaled(self, factor: complex) -> "ChannelTap":
        """A copy of this tap with the amplitude multiplied by ``factor``."""
        return ChannelTap(
            delay_s=self.delay_s,
            amplitude=self.amplitude * factor,
            kind=self.kind,
            order=self.order,
        )


class ChannelRealization:
    """A concrete channel: an ordered collection of taps.

    Taps are kept sorted by delay.  The realization is immutable from the
    outside; composition helpers return new instances.
    """

    def __init__(self, taps: Iterable[ChannelTap]) -> None:
        self._taps: tuple[ChannelTap, ...] = tuple(
            sorted(taps, key=lambda tap: tap.delay_s)
        )
        if len(self._taps) == 0:
            raise ValueError("a channel realization needs at least one tap")

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._taps)

    def __iter__(self):
        return iter(self._taps)

    def __getitem__(self, index: int) -> ChannelTap:
        return self._taps[index]

    @property
    def taps(self) -> tuple[ChannelTap, ...]:
        return self._taps

    # -- structural queries ---------------------------------------------------

    @property
    def first_path(self) -> ChannelTap:
        """The earliest tap (the direct path when LOS exists)."""
        return self._taps[0]

    @property
    def los_tap(self) -> ChannelTap | None:
        """The LOS tap, or ``None`` for NLOS channels."""
        for tap in self._taps:
            if tap.kind == "los":
                return tap
        return None

    @property
    def strongest_tap(self) -> ChannelTap:
        """The tap with the highest power.  In NLOS conditions this can be
        a reflection rather than the first path — the exact situation the
        paper's challenge IV warns about."""
        return max(self._taps, key=lambda tap: tap.power)

    @property
    def delay_spread_s(self) -> float:
        """RMS delay spread of the deterministic taps."""
        delays = np.array([tap.delay_s for tap in self._taps])
        powers = np.array([tap.power for tap in self._taps])
        total = powers.sum()
        if total == 0:
            return 0.0
        mean = float(np.sum(delays * powers) / total)
        return float(math.sqrt(np.sum(powers * (delays - mean) ** 2) / total))

    @property
    def excess_delay_s(self) -> float:
        """Maximum excess delay: last tap minus first tap."""
        return self._taps[-1].delay_s - self._taps[0].delay_s

    def total_power(self) -> float:
        return float(sum(tap.power for tap in self._taps))

    def specular_taps(self) -> List[ChannelTap]:
        return [tap for tap in self._taps if tap.kind != "diffuse"]

    # -- composition ----------------------------------------------------------

    def delayed(self, extra_delay_s: float) -> "ChannelRealization":
        """All taps shifted by a constant delay."""
        return ChannelRealization(tap.delayed(extra_delay_s) for tap in self._taps)

    def scaled(self, factor: complex) -> "ChannelRealization":
        """All taps scaled by a constant complex factor."""
        return ChannelRealization(tap.scaled(factor) for tap in self._taps)

    def merged(self, other: "ChannelRealization") -> "ChannelRealization":
        """Union of two realizations (e.g. two responders' signals
        superposing at the initiator)."""
        return ChannelRealization(list(self._taps) + list(other._taps))

    def without_los(self, attenuation: float = 0.0) -> "ChannelRealization":
        """An NLOS variant: the LOS tap is removed (``attenuation == 0``)
        or attenuated to ``attenuation`` times its amplitude."""
        taps = []
        for tap in self._taps:
            if tap.kind == "los":
                if attenuation > 0.0:
                    taps.append(tap.scaled(attenuation))
            else:
                taps.append(tap)
        if not taps:
            raise ValueError("removing the LOS tap left no channel taps")
        return ChannelRealization(taps)

    # -- rendering ------------------------------------------------------------

    def render(
        self,
        pulse: Pulse,
        n_samples: int,
        sampling_period_s: float | None = None,
        time_origin_s: float = 0.0,
    ) -> np.ndarray:
        """Render the band-limited received waveform into a complex buffer.

        Each tap contributes ``alpha_k * s(t - tau_k)``.  ``time_origin_s``
        maps buffer sample 0 to an absolute time, so a caller can window
        any part of the response.

        Returns a complex array of length ``n_samples``.
        """
        if sampling_period_s is None:
            sampling_period_s = pulse.sampling_period_s
        buffer = np.zeros(n_samples, dtype=complex)
        for tap in self._taps:
            position = (tap.delay_s - time_origin_s) / sampling_period_s
            place_pulse(
                buffer,
                pulse.samples,
                position,
                amplitude=tap.amplitude,
                peak_index=pulse.peak_index,
            )
        return buffer


def diffuse_tail_taps(
    onset_delay_s: float,
    total_power: float,
    rng: np.random.Generator,
    decay_ns: float = DIFFUSE_DECAY_NS,
    tap_spacing_ns: float = 1.0,
    duration_ns: float = 80.0,
) -> List[ChannelTap]:
    """Generate the diffuse multipath ``nu(t)`` as dense Rayleigh taps.

    Power decays exponentially after ``onset_delay_s`` with time constant
    ``decay_ns``; each tap has Rayleigh amplitude and uniform phase.  The
    sum of expected tap powers equals ``total_power``.
    """
    if total_power < 0:
        raise ValueError(f"diffuse power must be non-negative, got {total_power}")
    if total_power == 0:
        return []
    n_taps = max(1, int(duration_ns / tap_spacing_ns))
    offsets_ns = (np.arange(n_taps) + 0.5) * tap_spacing_ns
    profile = np.exp(-offsets_ns / decay_ns)
    profile = profile / profile.sum() * total_power
    amplitudes = np.sqrt(profile / 2.0) * (
        rng.standard_normal(n_taps) + 1j * rng.standard_normal(n_taps)
    )
    return [
        ChannelTap(
            delay_s=onset_delay_s + offsets_ns[i] * 1e-9,
            amplitude=complex(amplitudes[i]),
            kind="diffuse",
            order=2,
        )
        for i in range(n_taps)
    ]
