"""2-D room geometry and image-source multipath computation.

Reproduces the deterministic part of the paper's Fig. 1a: a rectangular
floor plan with a transmitter and receiver, where the line-of-sight path
and the four first-order wall reflections (MPC1–MPC4) are derived with
the image-source method.  Obstacles model attenuated/blocked LOS for the
NLOS scenarios the paper lists as challenge IV and future work.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.channel.cir import ChannelTap
from repro.channel.propagation import PathLossModel, propagation_delay_s
from repro.constants import SPEED_OF_LIGHT

#: Default amplitude reflection coefficient of a plasterboard/concrete wall
#: (order of magnitude used in multipath-assisted localisation work,
#: paper refs. [8], [9]).
DEFAULT_REFLECTION_COEFFICIENT = 0.55

#: DW1000 channel-7 carrier frequency [Hz], used for the deterministic
#: phase of each specular path.
CHANNEL7_CARRIER_HZ = 6.4896e9


@dataclass(frozen=True)
class Point:
    """A position in the 2-D floor plan [m]."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)


@dataclass(frozen=True)
class Obstacle:
    """An axis-aligned rectangular obstacle that attenuates paths.

    ``attenuation`` is the amplitude factor applied to any path crossing
    the obstacle (0 blocks the path entirely).
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    attenuation: float = 0.1

    def __post_init__(self) -> None:
        if self.x_min >= self.x_max or self.y_min >= self.y_max:
            raise ValueError("obstacle must have positive extent")
        if not 0.0 <= self.attenuation <= 1.0:
            raise ValueError(
                "attenuation must be an amplitude factor in [0, 1], "
                f"got {self.attenuation}"
            )

    def intersects_segment(self, a: Point, b: Point) -> bool:
        """Whether the segment ``a -> b`` passes through the obstacle.

        Uses the Liang–Barsky parametric clipping test.
        """
        dx = b.x - a.x
        dy = b.y - a.y
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, a.x - self.x_min),
            (dx, self.x_max - a.x),
            (-dy, a.y - self.y_min),
            (dy, self.y_max - a.y),
        ):
            if p == 0.0:
                if q < 0.0:
                    return False  # parallel and outside
                continue
            t = q / p
            if p < 0.0:
                t0 = max(t0, t)
            else:
                t1 = min(t1, t)
            if t0 > t1:
                return False
        return True


class Room:
    """A rectangular room with its lower-left corner at the origin.

    The four walls are named ``left`` (x = 0), ``right`` (x = width),
    ``bottom`` (y = 0), and ``top`` (y = height).  Obstacles can be added
    to attenuate or block paths for NLOS experiments.
    """

    WALLS = ("left", "right", "bottom", "top")

    def __init__(
        self,
        width: float,
        height: float,
        reflection_coefficient: float = DEFAULT_REFLECTION_COEFFICIENT,
        obstacles: Sequence[Obstacle] = (),
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"room must have positive size, got {width}x{height}")
        if not 0.0 <= reflection_coefficient <= 1.0:
            raise ValueError(
                "reflection coefficient must be an amplitude factor in [0, 1]"
            )
        self.width = float(width)
        self.height = float(height)
        self.reflection_coefficient = float(reflection_coefficient)
        self.obstacles: List[Obstacle] = list(obstacles)

    def contains(self, point: Point) -> bool:
        return 0.0 <= point.x <= self.width and 0.0 <= point.y <= self.height

    def _require_inside(self, point: Point, label: str) -> None:
        if not self.contains(point):
            raise ValueError(
                f"{label} {point} lies outside the {self.width}x{self.height} room"
            )

    def mirror(self, point: Point, wall: str) -> Point:
        """The image of ``point`` mirrored across a wall."""
        if wall == "left":
            return Point(-point.x, point.y)
        if wall == "right":
            return Point(2.0 * self.width - point.x, point.y)
        if wall == "bottom":
            return Point(point.x, -point.y)
        if wall == "top":
            return Point(point.x, 2.0 * self.height - point.y)
        raise ValueError(f"unknown wall {wall!r}; use one of {self.WALLS}")

    def reflection_point(self, tx: Point, rx: Point, wall: str) -> Point | None:
        """Where the first-order reflection off ``wall`` hits the wall,
        or ``None`` if the specular point lies outside the wall segment.
        """
        image = self.mirror(tx, wall)
        dx = rx.x - image.x
        dy = rx.y - image.y
        if wall in ("left", "right"):
            wall_x = 0.0 if wall == "left" else self.width
            if dx == 0.0:
                return None
            t = (wall_x - image.x) / dx
            point = Point(wall_x, image.y + t * dy)
            valid = 0.0 <= point.y <= self.height
        else:
            wall_y = 0.0 if wall == "bottom" else self.height
            if dy == 0.0:
                return None
            t = (wall_y - image.y) / dy
            point = Point(image.x + t * dx, wall_y)
            valid = 0.0 <= point.x <= self.width
        if not (0.0 < t < 1.0) or not valid:
            return None
        return point

    def path_obstruction(self, a: Point, b: Point) -> float:
        """Combined amplitude attenuation from obstacles on segment a->b."""
        factor = 1.0
        for obstacle in self.obstacles:
            if obstacle.intersects_segment(a, b):
                factor *= obstacle.attenuation
        return factor


def _carrier_phase(path_length_m: float, carrier_hz: float) -> complex:
    """Deterministic unit phasor of a path at the carrier frequency."""
    phase = -2.0 * math.pi * carrier_hz * path_length_m / SPEED_OF_LIGHT
    return cmath.exp(1j * phase)


def image_source_taps(
    room: Room,
    tx: Point,
    rx: Point,
    path_loss: PathLossModel | None = None,
    carrier_hz: float = CHANNEL7_CARRIER_HZ,
    include_los: bool = True,
) -> List[ChannelTap]:
    """Deterministic taps (LOS + first-order reflections) for a TX/RX pair.

    Implements the geometry of the paper's Fig. 1a: one LOS tap plus up to
    four first-order wall reflections (MPC1–MPC4).  Amplitudes combine the
    path-loss model, per-bounce reflection loss, obstacle attenuation, and
    the deterministic carrier phase of each path.

    Paths fully blocked by obstacles (attenuation 0) are omitted; an
    attenuated LOS is kept with reduced amplitude, reproducing the paper's
    "attenuated direct path" NLOS discussion.
    """
    room._require_inside(tx, "transmitter")
    room._require_inside(rx, "receiver")
    if path_loss is None:
        path_loss = PathLossModel.friis(carrier_hz)

    taps: List[ChannelTap] = []
    if include_los:
        d_los = tx.distance_to(rx)
        obstruction = room.path_obstruction(tx, rx)
        if obstruction > 0.0:
            amplitude = (
                path_loss.amplitude_gain(d_los)
                * obstruction
                * _carrier_phase(d_los, carrier_hz)
            )
            taps.append(
                ChannelTap(
                    delay_s=propagation_delay_s(d_los),
                    amplitude=amplitude,
                    kind="los",
                    order=0,
                )
            )

    for wall in Room.WALLS:
        bounce = room.reflection_point(tx, rx, wall)
        if bounce is None:
            continue
        length = room.mirror(tx, wall).distance_to(rx)
        obstruction = room.path_obstruction(tx, bounce) * room.path_obstruction(
            bounce, rx
        )
        if obstruction == 0.0:
            continue
        amplitude = (
            path_loss.amplitude_gain(length)
            * room.reflection_coefficient
            * obstruction
            * _carrier_phase(length, carrier_hz)
        )
        taps.append(
            ChannelTap(
                delay_s=propagation_delay_s(length),
                amplitude=amplitude,
                kind="reflection",
                order=1,
            )
        )
    if not taps:
        raise ValueError(
            "no propagation path between transmitter and receiver "
            "(all paths blocked)"
        )
    return taps
