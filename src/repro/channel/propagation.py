"""Path loss and propagation delay models.

The paper criticises the idealised Friis equation (challenge IV): real
UWB deployments see shadowing and obstructed paths, so detection must not
rely on absolute amplitudes.  We therefore provide both the idealised
Friis model *and* a log-distance model with log-normal shadowing, and the
experiments use the latter to stress amplitude-independence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_LIGHT

#: Reference distance for the log-distance model [m].
REFERENCE_DISTANCE_M = 1.0

#: Typical indoor LOS path-loss exponent (IEEE 802.15.4a channel models
#: CM1/CM3 report 1.6–2.0 for LOS office/residential).
DEFAULT_PATH_LOSS_EXPONENT = 1.8

#: Typical indoor shadowing standard deviation [dB].
DEFAULT_SHADOWING_SIGMA_DB = 2.0


def propagation_delay_s(distance_m: float) -> float:
    """One-way propagation delay over a distance [s]."""
    if distance_m < 0:
        raise ValueError(f"distance must be non-negative, got {distance_m}")
    return distance_m / SPEED_OF_LIGHT


def friis_path_gain(distance_m: float, carrier_hz: float) -> float:
    """Free-space *amplitude* gain per the Friis equation.

    Returns ``c / (4 pi d f)``, the amplitude scaling of an isotropic
    link; the power gain is this value squared.  ``distance_m`` below
    1 cm is clamped to avoid the near-field singularity.
    """
    if carrier_hz <= 0:
        raise ValueError(f"carrier frequency must be positive, got {carrier_hz}")
    distance_m = max(distance_m, 0.01)
    wavelength = SPEED_OF_LIGHT / carrier_hz
    return wavelength / (4.0 * math.pi * distance_m)


def log_distance_path_gain(
    distance_m: float,
    carrier_hz: float,
    exponent: float = DEFAULT_PATH_LOSS_EXPONENT,
    shadowing_db: float = 0.0,
) -> float:
    """Log-distance *amplitude* gain with an explicit shadowing term.

    Anchored to the Friis gain at the 1 m reference distance; beyond it
    the power decays with ``distance ** exponent`` and ``shadowing_db``
    adds a (signed) deviation in dB.
    """
    distance_m = max(distance_m, 0.01)
    reference_gain = friis_path_gain(REFERENCE_DISTANCE_M, carrier_hz)
    power_ratio = (REFERENCE_DISTANCE_M / distance_m) ** exponent
    shadow = 10.0 ** (shadowing_db / 20.0)
    return reference_gain * math.sqrt(power_ratio) * shadow


@dataclass
class PathLossModel:
    """A configured path-loss law mapping distance to amplitude gain.

    Use :meth:`friis` for the idealised model or :meth:`log_distance` for
    the realistic one; :meth:`sample_amplitude_gain` additionally draws a
    random shadowing term per call (for Monte-Carlo channels), while
    :meth:`amplitude_gain` is deterministic.
    """

    carrier_hz: float
    exponent: float = DEFAULT_PATH_LOSS_EXPONENT
    shadowing_sigma_db: float = 0.0
    use_friis: bool = False

    @classmethod
    def friis(cls, carrier_hz: float) -> "PathLossModel":
        """The idealised free-space model (no shadowing)."""
        return cls(carrier_hz=carrier_hz, exponent=2.0, use_friis=True)

    @classmethod
    def log_distance(
        cls,
        carrier_hz: float,
        exponent: float = DEFAULT_PATH_LOSS_EXPONENT,
        shadowing_sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB,
    ) -> "PathLossModel":
        """The realistic indoor model with log-normal shadowing."""
        return cls(
            carrier_hz=carrier_hz,
            exponent=exponent,
            shadowing_sigma_db=shadowing_sigma_db,
        )

    def amplitude_gain(self, distance_m: float) -> float:
        """Deterministic (median) amplitude gain at a distance."""
        if self.use_friis:
            return friis_path_gain(distance_m, self.carrier_hz)
        return log_distance_path_gain(
            distance_m, self.carrier_hz, exponent=self.exponent
        )

    def sample_amplitude_gain(
        self, distance_m: float, rng: np.random.Generator
    ) -> float:
        """Amplitude gain with a random shadowing draw."""
        shadowing_db = (
            float(rng.normal(0.0, self.shadowing_sigma_db))
            if self.shadowing_sigma_db > 0.0
            else 0.0
        )
        if self.use_friis:
            return friis_path_gain(distance_m, self.carrier_hz)
        return log_distance_path_gain(
            distance_m,
            self.carrier_hz,
            exponent=self.exponent,
            shadowing_db=shadowing_db,
        )
