"""UWB propagation-channel models.

The paper's experiments run in office and hallway environments whose
multipath structure drives all five of its challenges.  This subpackage
supplies that environment in software:

* :mod:`repro.channel.cir` — the tapped-delay-line channel of the paper's
  Eq. 1: deterministic specular taps plus a diffuse tail.
* :mod:`repro.channel.geometry` — 2-D rooms with image-source first-order
  reflections (paper Fig. 1a).
* :mod:`repro.channel.stochastic` — Saleh–Valenzuela-style random channel
  realisations for Monte-Carlo experiments.
* :mod:`repro.channel.propagation` — path loss (Friis / log-distance with
  shadowing) and propagation delays.
"""

from repro.channel.cir import ChannelTap, ChannelRealization, DIFFUSE_DECAY_NS
from repro.channel.geometry import Point, Room, image_source_taps
from repro.channel.propagation import (
    friis_path_gain,
    log_distance_path_gain,
    propagation_delay_s,
    PathLossModel,
)
from repro.channel.stochastic import SalehValenzuelaModel, IndoorEnvironment

__all__ = [
    "ChannelTap",
    "ChannelRealization",
    "DIFFUSE_DECAY_NS",
    "Point",
    "Room",
    "image_source_taps",
    "friis_path_gain",
    "log_distance_path_gain",
    "propagation_delay_s",
    "PathLossModel",
    "SalehValenzuelaModel",
    "IndoorEnvironment",
]
