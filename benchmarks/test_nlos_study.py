"""Bench EXP-N1 — NLOS study (the paper's declared future work)."""

from repro.experiments import nlos_study


def test_nlos_study(benchmark):
    result = nlos_study.run(trials=50)
    print()
    print(result.render())

    los = result.metric("id_rate_los").measured
    nlos = result.metric("id_rate_nlos").measured
    # Expected shape: near-perfect under LOS, clearly degraded when the
    # direct path is blocked.
    assert los > 0.9
    assert nlos < los

    benchmark(nlos_study.run, trials=2, seed=3)
