"""Bench EXP-A1 — Ablation: detectors vs response separation."""

from repro.experiments import ablation_detectors


def test_ablation_detectors(benchmark):
    result = ablation_detectors.run(trials=80)
    print()
    print(result.render())

    search = result.metric("mean_search_rate_overlapping").measured
    threshold = result.metric("mean_threshold_rate_overlapping").measured
    # Shape: search-and-subtract dominates in the overlapping regime.
    assert search > threshold
    assert search > 0.85

    benchmark(ablation_detectors.run, trials=2, seed=1)
