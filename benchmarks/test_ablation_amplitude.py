"""Bench EXP-A3 — step-4 amplitude estimate vs joint least squares."""

from repro.experiments import ablation_amplitude


def test_ablation_amplitude(benchmark):
    result = ablation_amplitude.run(trials=50)
    print()
    print(result.render())

    # The paper's trade: for separated responses the cheap step-4
    # estimate is as good as least squares.
    plain_separated = result.metric("plain_rmse_separated").measured
    assert plain_separated < 0.05

    benchmark(ablation_amplitude.run, trials=2, seed=9)
