"""Bench EXP-S9 — identification rate as the Fig. 8 scheme fills up."""

from repro.experiments import capacity_stress


def test_capacity_stress(benchmark):
    result = capacity_stress.run(trials=30)
    print()
    print(result.render())

    # Shape: high identification through the paper's 9-responder point,
    # graceful (not cliff-edge) behaviour at full capacity.
    assert result.metric("id_rate_9").measured > 0.9
    assert result.metric("id_rate_12_full").measured > 0.85

    benchmark(capacity_stress._identification_rate, 6, 2, 5)
