"""Bench EXP-F5 — Fig. 5: pulse shapes vs TC_PGDELAY."""

from repro.experiments import fig5_pulse_shapes
from repro.signal.pulses import dw1000_pulse


def test_fig5_pulse_shapes(benchmark):
    result = fig5_pulse_shapes.run()
    print()
    print(result.render())

    assert result.metric("width_monotone_in_register").measured == 1.0
    assert result.metric("supported_shapes").measured == 108

    benchmark(dw1000_pulse, 0xC8, 0.1252e-9)
