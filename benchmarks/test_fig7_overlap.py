"""Bench EXP-F7 — Fig. 7 / Sect. VI: overlapping-response detection.

Paper: search-and-subtract 92.6 % vs threshold 48 % over 2000 trials;
the default here evaluates 300 overlapping trials.
"""

TRIALS = 300

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.experiments import fig7_overlap
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse


def test_fig7_overlap(benchmark):
    result = fig7_overlap.run(trials=TRIALS)
    print()
    print(result.render())

    search = result.metric("search_and_subtract_rate").measured
    threshold = result.metric("threshold_rate").measured
    # Shape criteria: search-and-subtract lands in the paper's ~90 %
    # regime, the threshold baseline in the ~50 % regime, and the
    # advantage factor is ~2x.
    assert search > 0.80
    assert threshold < 0.65
    assert search / threshold > 1.4

    # Kernel: one search-and-subtract pass on an overlapping-pulse CIR.
    pulse = dw1000_pulse()
    cir = np.zeros(1016, dtype=complex)
    place_pulse(cir, pulse.samples.astype(complex), 300.0, 1e-3)
    place_pulse(cir, pulse.samples.astype(complex), 301.5, 1e-3 * 1j)
    rng = np.random.default_rng(0)
    cir += 1e-5 * (rng.standard_normal(1016) + 1j * rng.standard_normal(1016))
    detector = SearchAndSubtract(
        pulse, SearchAndSubtractConfig(max_responses=2, upsample_factor=8)
    )
    benchmark(detector.detect, cir, CIR_SAMPLING_PERIOD_S, 1e-5)
