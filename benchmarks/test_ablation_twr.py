"""Bench EXP-A4 — TWR scheme comparison under clock drift."""

from repro.experiments import ablation_twr


def test_ablation_twr(benchmark):
    result = ablation_twr.run(trials=300)
    print()
    print(result.render())

    # Shape: compensated SS-TWR sits in the paper's cm band; plain
    # SS-TWR carries a visible drift bias.
    assert result.metric("ss_compensated_std_m").measured < 0.04
    assert result.metric("ds_std_m").measured < 0.04
    assert result.metric("ss_raw_abs_bias_m").measured > 0.01

    benchmark(ablation_twr.run, trials=10, seed=2)
