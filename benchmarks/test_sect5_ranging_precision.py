"""Bench EXP-S5 — Sect. V: SS-TWR precision per pulse shape.

Paper: sigma = 0.0228 / 0.0221 / 0.0283 m for s1 / s2 / s3 over 5000
exchanges; the default here runs 800 per shape.
"""

TRIALS = 800

import numpy as np

from repro.experiments import sect5_precision


def test_sect5_ranging_precision(benchmark):
    result = sect5_precision.run(trials=TRIALS)
    print()
    print(result.render())

    # Shape criteria: every sigma inside the paper's 2-3 cm band, and
    # the spread across shapes below 2x (pulse shaping is "free").
    for name in ("sigma_s1_m", "sigma_s2_m", "sigma_s3_m"):
        sigma = result.metric(name).measured
        assert 0.015 < sigma < 0.04, f"{name} = {sigma:.4f} m"
    assert result.metric("max_over_min_sigma").measured < 2.0

    benchmark(sect5_precision.twr_errors, 0x93, 25, 7)
