"""Bench EXP-F3 — Fig. 3 / Sect. III: frame timing budget."""

import pytest

from repro.experiments import fig3_timing
from repro.protocol.messages import INIT_PAYLOAD_BYTES
from repro.radio.frame import RadioConfig, min_response_delay_s


def test_fig3_timing(benchmark):
    result = fig3_timing.run()
    print()
    print(result.render())

    # The paper's exact numbers: 178.5 us minimum, 290 us chosen.
    assert result.metric("min_delay_us").measured == pytest.approx(178.5, abs=0.5)
    assert result.metric("chosen_delta_resp_us").measured == 290.0

    config = RadioConfig()
    benchmark(min_response_delay_s, config, INIT_PAYLOAD_BYTES)
