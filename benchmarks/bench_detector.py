#!/usr/bin/env python
"""Benchmark: spectrum-cached FFT detection engine vs the naive loop.

Times the search-and-subtract detector's two execution engines on the
repository's hot workloads and writes ``BENCH_detector.json``:

* **table1** — the Table I / Fig. 4 shape: a 4-template bank, a
  1016-tap CIR, 8x upsampling, 4 extraction iterations.
* **fig7** — the overlap-study shape: a single template, 2 iterations.

Every trial is detected with *both* engines and the results are compared
at ``rtol=1e-9``; any divergence makes the script exit non-zero, so CI
can run it as a cheap end-to-end regression gate (``--quick``).

Usage::

    PYTHONPATH=src python benchmarks/bench_detector.py
    PYTHONPATH=src python benchmarks/bench_detector.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.runtime.cache import clear_all_caches, get_cache
from repro.runtime.metrics import global_metrics
from repro.signal.sampling import place_pulse
from repro.signal.templates import TemplateBank

RTOL = 1e-9


def make_cirs(rng, n_trials, cir_length, bank, n_responses, noise_std):
    """Synthetic concurrent-ranging CIRs: pulses at random positions."""
    cirs = []
    margin = 16.0
    for _ in range(n_trials):
        cir = np.zeros(cir_length, dtype=complex)
        positions = np.sort(
            rng.uniform(margin, cir_length - margin, size=n_responses)
        )
        for k, position in enumerate(positions):
            template = bank[int(rng.integers(len(bank)))]
            amplitude = rng.uniform(0.4, 1.0) * np.exp(
                2j * np.pi * rng.random()
            )
            place_pulse(
                cir,
                template.samples.astype(complex),
                position,
                amplitude=amplitude,
                peak_index=template.peak_index,
            )
        cir += noise_std * (
            rng.standard_normal(cir_length)
            + 1j * rng.standard_normal(cir_length)
        ) / np.sqrt(2.0)
        cirs.append(cir)
    return cirs


def responses_equal(fast, naive):
    """The fast engine's detections must match the naive engine's."""
    if len(fast) != len(naive):
        return False
    for f, n in zip(fast, naive):
        if f.template_index != n.template_index:
            return False
        if not np.isclose(f.index, n.index, rtol=RTOL, atol=1e-9):
            return False
        if not np.isclose(f.amplitude, n.amplitude, rtol=RTOL, atol=1e-12):
            return False
        if not np.allclose(f.scores, n.scores, rtol=RTOL, atol=1e-12):
            return False
    return True


def bench_workload(name, bank, cirs, config, noise_std):
    """Time both engines over the trial set; verify equivalence."""
    fast_detector = SearchAndSubtract(bank, config)
    naive_detector = SearchAndSubtract(
        bank,
        SearchAndSubtractConfig(
            max_responses=config.max_responses,
            upsample_factor=config.upsample_factor,
            min_peak_snr=config.min_peak_snr,
            refine_subsample=config.refine_subsample,
            use_fast=False,
        ),
    )

    t0 = time.perf_counter()
    naive_results = [
        naive_detector.detect(cir, TS, noise_std=noise_std) for cir in cirs
    ]
    naive_s = time.perf_counter() - t0

    # The fast timing includes the one-off plan build: that is what a
    # Monte-Carlo run actually pays, amortised over its trials.
    t0 = time.perf_counter()
    fast_results = [
        fast_detector.detect(cir, TS, noise_std=noise_std) for cir in cirs
    ]
    fast_s = time.perf_counter() - t0

    divergences = sum(
        0 if responses_equal(f, n) else 1
        for f, n in zip(fast_results, naive_results)
    )
    return {
        "workload": name,
        "trials": len(cirs),
        "n_templates": len(list(bank)),
        "cir_length": len(cirs[0]),
        "upsample_factor": config.upsample_factor,
        "max_responses": config.max_responses,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "speedup": naive_s / fast_s if fast_s > 0 else float("inf"),
        "naive_ms_per_detect": 1e3 * naive_s / len(cirs),
        "fast_ms_per_detect": 1e3 * fast_s / len(cirs),
        "divergences": divergences,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer trials (same equivalence checking)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_detector.json",
        help="output JSON path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    trials = 16 if args.quick else 60
    rng = np.random.default_rng(2018)
    clear_all_caches()

    bank4 = TemplateBank.paper_bank(4)
    bank1 = TemplateBank.paper_bank(1)
    workloads = [
        (
            "table1",
            bank4,
            make_cirs(rng, trials, 1016, bank4, 4, 1e-3),
            SearchAndSubtractConfig(max_responses=4, upsample_factor=8),
            1e-3,
        ),
        (
            "fig7",
            bank1,
            make_cirs(rng, trials, 1016, bank1, 2, 1e-3),
            SearchAndSubtractConfig(max_responses=2, upsample_factor=8),
            1e-3,
        ),
    ]

    results = []
    for name, bank, cirs, config, noise_std in workloads:
        result = bench_workload(name, bank, cirs, config, noise_std)
        results.append(result)
        print(
            f"{name:>8}: naive {result['naive_ms_per_detect']:.1f} ms/detect, "
            f"fast {result['fast_ms_per_detect']:.1f} ms/detect, "
            f"speedup {result['speedup']:.2f}x, "
            f"divergences {result['divergences']}/{result['trials']}"
        )

    hits, misses = get_cache("detector_plans").snapshot()
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    metrics = global_metrics()
    report = {
        "benchmark": "detector",
        "quick": bool(args.quick),
        "workloads": results,
        "plan_cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hit_rate,
        },
        "counters": {
            "fast_detects": metrics.counter("detector.fast_detects").value,
            "naive_detects": metrics.counter("detector.naive_detects").value,
            "incremental_updates": metrics.counter(
                "detector.incremental_updates"
            ).value,
        },
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"plan cache hit rate: {hit_rate:.1%} ({hits} hits / {misses} misses)")
    print(f"wrote {out_path}")

    total_divergences = sum(r["divergences"] for r in results)
    if total_divergences:
        print(
            f"ERROR: {total_divergences} fast-vs-naive divergences",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
