#!/usr/bin/env python
"""Benchmark: spectrum-cached FFT detection engine vs the naive loop.

Times the search-and-subtract detector's execution engines on the
repository's hot workloads and writes ``BENCH_detector.json``:

* **table1** — the Table I / Fig. 4 shape: a 4-template bank, a
  1016-tap CIR, 8x upsampling, 4 extraction iterations.
* **fig7** — the overlap-study shape: a single template, 2 iterations.
* **batched** — 64 table1-shaped CIRs through
  :func:`repro.core.batch.detect_batch` at batch sizes 1, 8 and 64,
  compared against the serial fast path (one detect per CIR).
* **classifier** — the same 64 CIRs through the batched pulse-shape
  identification engine (:func:`repro.core.batch_id.classify_batch`) at
  batch sizes 1, 8 and 64, cold (plan build included) and warm,
  compared against serial
  :meth:`~repro.core.pulse_id.PulseShapeClassifier.classify` calls.
* **parallel_plan_reuse** — a ``run_trials(workers=2)`` sweep measuring
  the ``detector_plans`` cache hit rate across worker processes.

Every trial is detected with *both* engines and the results are compared
at ``rtol=1e-9``; any divergence (detection *or* classification) — or a
warm B=64 batched detection pass missing its throughput SLO (speedup
floor of 2.0x vs the serial fast path on multicore hosts, 1.5x on a
single core; plus an absolute 250 detections/s/core floor), or a B=64
batched classification run slower than 1.2x its serial reference, or a
worker-side plan-cache hit rate below 95 % — makes the script exit
non-zero, so CI can run it as a cheap end-to-end regression gate
(``--quick``, pinned to the NumPy backend via ``REPRO_BACKEND=numpy``).

Usage::

    PYTHONPATH=src python benchmarks/bench_detector.py
    PYTHONPATH=src python benchmarks/bench_detector.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.backend import get_backend
from repro.core.batch import detect_batch
from repro.core.batch_id import classify_batch
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.runtime import MetricsRegistry, run_trials
from repro.runtime.cache import clear_all_caches, get_cache, template_bank
from repro.runtime.metrics import global_metrics
from repro.signal.sampling import place_pulse
from repro.signal.templates import PAPER_REGISTERS, TemplateBank

RTOL = 1e-9

#: Throughput SLO: the warm B=64 batched pass must *beat* the serial
#: fast path by at least this factor on multicore hosts, where the
#: backend's row-parallel transforms (``workers=-1``) have cores to
#: spread across.
BATCH_SPEEDUP_FLOOR = 2.0

#: On a single-core host the batched win comes only from amortised
#: Python/FFT-dispatch overhead (no transform parallelism), so the
#: speedup floor is lower — but still a *speedup*, never parity.
SINGLE_CORE_SPEEDUP_FLOOR = 1.5

#: Absolute throughput SLO: warm B=64 table1-shaped detections per
#: second per core.  Catches "both paths got slower together", which a
#: relative speedup gate is blind to.
MIN_DETECTS_PER_S_PER_CORE = 250.0

#: Same gate for the batched classifier: the warm B=64 pass must stay
#: within 20 % of the serial classify loop (and should beat it).
CLASSIFIER_REGRESSION_FACTOR = 1.2

#: Minimum acceptable per-worker ``detector_plans`` hit rate in the
#: parallel executor: each worker builds the plan at most once.
MIN_PLAN_HIT_RATE = 0.95


def make_cirs(rng, n_trials, cir_length, bank, n_responses, noise_std):
    """Synthetic concurrent-ranging CIRs: pulses at random positions."""
    cirs = []
    margin = 16.0
    for _ in range(n_trials):
        cir = np.zeros(cir_length, dtype=complex)
        positions = np.sort(
            rng.uniform(margin, cir_length - margin, size=n_responses)
        )
        for k, position in enumerate(positions):
            template = bank[int(rng.integers(len(bank)))]
            amplitude = rng.uniform(0.4, 1.0) * np.exp(
                2j * np.pi * rng.random()
            )
            place_pulse(
                cir,
                template.samples.astype(complex),
                position,
                amplitude=amplitude,
                peak_index=template.peak_index,
            )
        cir += noise_std * (
            rng.standard_normal(cir_length)
            + 1j * rng.standard_normal(cir_length)
        ) / np.sqrt(2.0)
        cirs.append(cir)
    return cirs


def responses_equal(fast, naive):
    """The fast engine's detections must match the naive engine's."""
    if len(fast) != len(naive):
        return False
    for f, n in zip(fast, naive):
        if f.template_index != n.template_index:
            return False
        if not np.isclose(f.index, n.index, rtol=RTOL, atol=1e-9):
            return False
        if not np.isclose(f.amplitude, n.amplitude, rtol=RTOL, atol=1e-12):
            return False
        if not np.allclose(f.scores, n.scores, rtol=RTOL, atol=1e-12):
            return False
    return True


def classified_equal(batched, serial):
    """The batched classifier's outputs must match the serial ones."""
    if len(batched) != len(serial):
        return False
    for b, s in zip(batched, serial):
        if b.shape_index != s.shape_index:
            return False
        if np.isinf(b.confidence) or np.isinf(s.confidence):
            if b.confidence != s.confidence:
                return False
        elif not np.isclose(b.confidence, s.confidence, rtol=RTOL, atol=1e-12):
            return False
        if not responses_equal([b.response], [s.response]):
            return False
    return True


def bench_workload(name, bank, cirs, config, noise_std):
    """Time both engines over the trial set; verify equivalence."""
    fast_detector = SearchAndSubtract(bank, config)
    naive_detector = SearchAndSubtract(
        bank,
        SearchAndSubtractConfig(
            max_responses=config.max_responses,
            upsample_factor=config.upsample_factor,
            min_peak_snr=config.min_peak_snr,
            refine_subsample=config.refine_subsample,
            use_fast=False,
        ),
    )

    t0 = time.perf_counter()
    naive_results = [
        naive_detector.detect(cir, TS, noise_std=noise_std) for cir in cirs
    ]
    naive_s = time.perf_counter() - t0

    # The fast timing includes the one-off plan build: that is what a
    # Monte-Carlo run actually pays, amortised over its trials.
    t0 = time.perf_counter()
    fast_results = [
        fast_detector.detect(cir, TS, noise_std=noise_std) for cir in cirs
    ]
    fast_s = time.perf_counter() - t0

    divergences = sum(
        0 if responses_equal(f, n) else 1
        for f, n in zip(fast_results, naive_results)
    )
    return {
        "workload": name,
        "trials": len(cirs),
        "n_templates": len(list(bank)),
        "cir_length": len(cirs[0]),
        "upsample_factor": config.upsample_factor,
        "max_responses": config.max_responses,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "speedup": naive_s / fast_s if fast_s > 0 else float("inf"),
        "naive_ms_per_detect": 1e3 * naive_s / len(cirs),
        "fast_ms_per_detect": 1e3 * fast_s / len(cirs),
        "divergences": divergences,
    }


def bench_batched(
    bank, config, noise_std, rng, batch_sizes=(1, 8, 64), n_trials=64
):
    """Time cross-trial batched detection against the serial fast path.

    The serial reference detects the same ``n_trials`` CIRs one at a
    time through the (already fast) spectrum-cached engine; each batched
    pass splits them into groups of B and runs one
    :func:`~repro.core.batch.detect_batch` call per group.  Per-trial
    results must match the serial reference at ``rtol=1e-9``.
    """
    cirs = np.stack(make_cirs(rng, n_trials, 1016, bank, 4, noise_std))
    detector = SearchAndSubtract(bank, config)

    # Same noise discipline as the batched side: the reference is the
    # fastest of three serial sweeps (the first also warms the plan).
    serial_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        serial_results = [
            detector.detect(cirs[b], TS, noise_std=noise_std)
            for b in range(n_trials)
        ]
        serial_s = min(serial_s, time.perf_counter() - t0)

    rows = []
    for batch_size in batch_sizes:
        def _pass():
            batched_results = []
            for start in range(0, n_trials, batch_size):
                batched_results.extend(
                    detect_batch(
                        cirs[start:start + batch_size],
                        bank,
                        TS,
                        config,
                        noise_std=noise_std,
                    )
                )
            return batched_results

        # Cold pass pays the one-off batch-plan build (scratch buffer
        # allocation); the warm passes are the steady state a
        # Monte-Carlo run amortises to.  The SLO gate judges the
        # *fastest* of three warm passes — a single pass is exposed to
        # scheduler noise that has nothing to do with the engine.
        t0 = time.perf_counter()
        batched_results = _pass()
        cold_s = time.perf_counter() - t0
        # Split each warm pass into its two engine stages via the
        # engine's own timers (filter-bank transforms vs vectorised
        # search-and-subtract extraction).
        metrics = global_metrics()
        filter_timer = metrics.timer("detector.batch_filter_pass")
        extract_timer = metrics.timer("detector.batch_extract")
        batched_s = filter_s = extract_s = float("inf")
        for _ in range(3):
            filter_before = filter_timer.total_s
            extract_before = extract_timer.total_s
            t0 = time.perf_counter()
            batched_results = _pass()
            warm_s = time.perf_counter() - t0
            if warm_s < batched_s:
                batched_s = warm_s
                filter_s = filter_timer.total_s - filter_before
                extract_s = extract_timer.total_s - extract_before

        divergences = sum(
            0 if responses_equal(batched, serial) else 1
            for batched, serial in zip(batched_results, serial_results)
        )
        rows.append(
            {
                "batch_size": batch_size,
                "cold_s": cold_s,
                "batched_s": batched_s,
                "filter_pass_s": filter_s,
                "batch_extract_s": extract_s,
                "ms_per_detect": 1e3 * batched_s / n_trials,
                "speedup_vs_serial_fast": (
                    serial_s / batched_s if batched_s > 0 else float("inf")
                ),
                "divergences": divergences,
            }
        )
    return {
        "workload": "table1",
        "trials": n_trials,
        "cir_length": int(cirs.shape[1]),
        "serial_fast_s": serial_s,
        "serial_fast_ms_per_detect": 1e3 * serial_s / n_trials,
        "batches": rows,
    }


def bench_classifier(
    bank, config, noise_std, rng, batch_sizes=(1, 8, 64), n_trials=64
):
    """Time the batched pulse-shape identification engine.

    The serial reference classifies the same ``n_trials`` CIRs one at a
    time through :class:`~repro.core.pulse_id.PulseShapeClassifier`;
    each batched pass splits them into groups of B and runs one
    :func:`~repro.core.batch_id.classify_batch` call per group.
    Per-trial classifications must match the serial reference at
    ``rtol=1e-9``.
    """
    cirs = np.stack(
        make_cirs(rng, n_trials, 1016, bank, config.max_responses, noise_std)
    )
    classifier = PulseShapeClassifier(bank, config)

    t0 = time.perf_counter()
    serial_results = [
        classifier.classify(cirs[b], TS, noise_std=noise_std)
        for b in range(n_trials)
    ]
    serial_s = time.perf_counter() - t0

    rows = []
    for batch_size in batch_sizes:
        def _pass():
            batched_results = []
            for start in range(0, n_trials, batch_size):
                batched_results.extend(
                    classify_batch(
                        cirs[start:start + batch_size],
                        bank,
                        TS,
                        config,
                        noise_std=noise_std,
                    )
                )
            return batched_results

        # Cold pass pays the one-off classifier-plan build; the warm
        # pass is the Monte-Carlo steady state the regression gate
        # judges.
        t0 = time.perf_counter()
        batched_results = _pass()
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched_results = _pass()
        batched_s = time.perf_counter() - t0

        divergences = sum(
            0 if classified_equal(batched, serial) else 1
            for batched, serial in zip(batched_results, serial_results)
        )
        rows.append(
            {
                "batch_size": batch_size,
                "cold_s": cold_s,
                "batched_s": batched_s,
                "ms_per_classify": 1e3 * batched_s / n_trials,
                "speedup_vs_serial": (
                    serial_s / batched_s if batched_s > 0 else float("inf")
                ),
                "divergences": divergences,
            }
        )
    return {
        "workload": "table1",
        "trials": n_trials,
        "cir_length": int(cirs.shape[1]),
        "n_templates": len(list(bank)),
        "serial_s": serial_s,
        "serial_ms_per_classify": 1e3 * serial_s / n_trials,
        "batches": rows,
    }


def _plan_reuse_trial(rng, index):
    """One table1-shaped detect; exercises worker-side plan reuse."""
    bank = template_bank(PAPER_REGISTERS)
    cir = make_cirs(rng, 1, 1016, bank, 4, 1e-3)[0]
    detector = SearchAndSubtract(
        bank, SearchAndSubtractConfig(max_responses=4, upsample_factor=8)
    )
    return len(detector.detect(cir, TS, noise_std=1e-3))


def bench_plan_reuse(trials=60, workers=2):
    """Measure the ``detector_plans`` hit rate across pool workers.

    Caches are cleared first, so each worker process pays exactly one
    plan build (its first trial) and every subsequent trial in that
    worker is a hit — the hit rate floor is ``1 - workers / trials``.
    Worker-side hits/misses travel back as cache deltas on the shared
    metrics registry.
    """
    clear_all_caches()
    metrics = MetricsRegistry()
    t0 = time.perf_counter()
    report = run_trials(
        _plan_reuse_trial, trials, seed=2018, workers=workers,
        metrics=metrics,
    )
    elapsed_s = time.perf_counter() - t0
    hits = metrics.counter("cache.detector_plans.hits").value
    misses = metrics.counter("cache.detector_plans.misses").value
    total = hits + misses
    return {
        "trials": trials,
        "workers": workers,
        "elapsed_s": elapsed_s,
        "trials_per_s": report.trials_per_s,
        "fallback_reason": report.run.fallback_reason,
        "detector_plans_hits": hits,
        "detector_plans_misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer trials (same equivalence checking)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_detector.json",
        help="output JSON path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    trials = 16 if args.quick else 60
    rng = np.random.default_rng(2018)
    clear_all_caches()

    bank4 = TemplateBank.paper_bank(4)
    bank1 = TemplateBank.paper_bank(1)
    workloads = [
        (
            "table1",
            bank4,
            make_cirs(rng, trials, 1016, bank4, 4, 1e-3),
            SearchAndSubtractConfig(max_responses=4, upsample_factor=8),
            1e-3,
        ),
        (
            "fig7",
            bank1,
            make_cirs(rng, trials, 1016, bank1, 2, 1e-3),
            SearchAndSubtractConfig(max_responses=2, upsample_factor=8),
            1e-3,
        ),
    ]

    results = []
    for name, bank, cirs, config, noise_std in workloads:
        result = bench_workload(name, bank, cirs, config, noise_std)
        results.append(result)
        print(
            f"{name:>8}: naive {result['naive_ms_per_detect']:.1f} ms/detect, "
            f"fast {result['fast_ms_per_detect']:.1f} ms/detect, "
            f"speedup {result['speedup']:.2f}x, "
            f"divergences {result['divergences']}/{result['trials']}"
        )

    batched = bench_batched(
        bank4,
        SearchAndSubtractConfig(max_responses=4, upsample_factor=8),
        1e-3,
        rng,
    )
    for row in batched["batches"]:
        print(
            f"batched B={row['batch_size']:>2}: "
            f"{row['ms_per_detect']:.2f} ms/detect "
            f"(filter {1e3 * row['filter_pass_s'] / batched['trials']:.2f} "
            f"+ extract "
            f"{1e3 * row['batch_extract_s'] / batched['trials']:.2f}), "
            f"{row['speedup_vs_serial_fast']:.2f}x vs serial fast, "
            f"divergences {row['divergences']}/{batched['trials']}"
        )

    classifier = bench_classifier(
        bank4,
        SearchAndSubtractConfig(max_responses=4, upsample_factor=8),
        1e-3,
        rng,
    )
    for row in classifier["batches"]:
        print(
            f"classifier B={row['batch_size']:>2}: "
            f"{row['ms_per_classify']:.2f} ms/classify, "
            f"{row['speedup_vs_serial']:.2f}x vs serial, "
            f"divergences {row['divergences']}/{classifier['trials']}"
        )

    hits, misses = get_cache("detector_plans").snapshot()
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    metrics = global_metrics()
    counters = {
        "fast_detects": metrics.counter("detector.fast_detects").value,
        "naive_detects": metrics.counter("detector.naive_detects").value,
        "incremental_updates": metrics.counter(
            "detector.incremental_updates"
        ).value,
        "batch_detects": metrics.counter("detector.batch_detects").value,
        "batch_trials": metrics.counter("detector.batch_trials").value,
        "batch_classifies": metrics.counter(
            "classifier.batch_classifies"
        ).value,
        "classifier_batch_trials": metrics.counter(
            "classifier.batch_trials"
        ).value,
    }

    # Last: this section clears the caches to force worker-side builds.
    plan_reuse = bench_plan_reuse()
    print(
        f"parallel plan reuse ({plan_reuse['workers']} workers, "
        f"{plan_reuse['trials']} trials): detector_plans hit rate "
        f"{plan_reuse['hit_rate']:.1%}"
    )

    cpu_count = os.cpu_count() or 1
    speedup_floor = (
        BATCH_SPEEDUP_FLOOR if cpu_count >= 2 else SINGLE_CORE_SPEEDUP_FLOOR
    )
    b64 = next(
        row for row in batched["batches"] if row["batch_size"] == 64
    )
    detects_per_s = (
        batched["trials"] / b64["batched_s"]
        if b64["batched_s"] > 0
        else float("inf")
    )
    slo = {
        "cpu_count": cpu_count,
        "backend": get_backend().name,
        "speedup_floor": speedup_floor,
        "b64_speedup": b64["speedup_vs_serial_fast"],
        "detects_per_s": detects_per_s,
        "detects_per_s_per_core": detects_per_s / cpu_count,
        "min_detects_per_s_per_core": MIN_DETECTS_PER_S_PER_CORE,
    }
    print(
        f"throughput SLO ({cpu_count} core(s), backend {slo['backend']}): "
        f"B=64 speedup {slo['b64_speedup']:.2f}x (floor "
        f"{speedup_floor:.1f}x), "
        f"{slo['detects_per_s_per_core']:.0f} detects/s/core (floor "
        f"{MIN_DETECTS_PER_S_PER_CORE:.0f})"
    )

    report = {
        "benchmark": "detector",
        "quick": bool(args.quick),
        "workloads": results,
        "batched": batched,
        "classifier": classifier,
        "parallel_plan_reuse": plan_reuse,
        "plan_cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hit_rate,
        },
        "counters": counters,
        "slo": slo,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"plan cache hit rate: {hit_rate:.1%} ({hits} hits / {misses} misses)")
    print(f"wrote {out_path}")

    failed = False
    total_divergences = (
        sum(r["divergences"] for r in results)
        + sum(row["divergences"] for row in batched["batches"])
        + sum(row["divergences"] for row in classifier["batches"])
    )
    if total_divergences:
        print(
            f"ERROR: {total_divergences} engine divergences",
            file=sys.stderr,
        )
        failed = True
    if b64["speedup_vs_serial_fast"] < speedup_floor:
        print(
            f"ERROR: warm B=64 batched speedup "
            f"{b64['speedup_vs_serial_fast']:.2f}x below the "
            f"{speedup_floor:.1f}x floor for {cpu_count} core(s)",
            file=sys.stderr,
        )
        failed = True
    if slo["detects_per_s_per_core"] < MIN_DETECTS_PER_S_PER_CORE:
        print(
            f"ERROR: warm B=64 throughput "
            f"{slo['detects_per_s_per_core']:.0f} detects/s/core below "
            f"the {MIN_DETECTS_PER_S_PER_CORE:.0f} floor",
            file=sys.stderr,
        )
        failed = True
    c64 = next(
        row for row in classifier["batches"] if row["batch_size"] == 64
    )
    if c64["batched_s"] > CLASSIFIER_REGRESSION_FACTOR * classifier["serial_s"]:
        print(
            f"ERROR: B=64 batched classifier pass took "
            f"{c64['batched_s']:.3f}s, over "
            f"{CLASSIFIER_REGRESSION_FACTOR}x the serial classify loop "
            f"({classifier['serial_s']:.3f}s)",
            file=sys.stderr,
        )
        failed = True
    if plan_reuse["hit_rate"] < MIN_PLAN_HIT_RATE:
        print(
            f"ERROR: worker-side detector_plans hit rate "
            f"{plan_reuse['hit_rate']:.1%} below {MIN_PLAN_HIT_RATE:.0%}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
