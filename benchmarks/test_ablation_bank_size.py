"""Bench EXP-A2 — Ablation: ID accuracy vs template-bank size."""

import numpy as np

from repro.experiments import ablation_bank


def test_ablation_bank_size(benchmark):
    result = ablation_bank.run(trials=60)
    print()
    print(result.render())

    # Shape: the paper's 3-shape operating point is near-perfect; the
    # table shows how accuracy behaves as shapes pack tighter.
    assert result.metric("accuracy_3_shapes").measured > 0.95

    rng = np.random.default_rng(3)
    benchmark(ablation_bank.classification_accuracy, 3, 5, 30.0, rng)
