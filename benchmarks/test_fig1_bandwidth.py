"""Bench EXP-F1 — Fig. 1b: multipath resolvability vs bandwidth."""

from repro.experiments import fig1_bandwidth


def test_fig1_bandwidth(benchmark):
    result = fig1_bandwidth.run()
    print()
    print(result.render())

    # Shape criteria: nearly all MPCs resolve at 900 MHz, (almost) none
    # at 50 MHz, and the wideband edge is an order of magnitude steeper.
    assert result.metric("resolved_900MHz").measured >= 4
    assert result.metric("resolved_50MHz").measured <= 1

    benchmark(fig1_bandwidth.received_waveform, 900e6)
