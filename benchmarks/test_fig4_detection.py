"""Bench EXP-F4 — Fig. 4: response detection at 3/6/10 m."""

import pytest

from repro.experiments import fig4_detection
from repro.protocol.concurrent import ConcurrentRangingSession


def test_fig4_detection(benchmark):
    result = fig4_detection.run(trials=120)
    print()
    print(result.render())

    # Shape criteria: all three responders detected almost always; mean
    # distances land on 3/6/10 m (quantisation jitter averages out).
    assert result.metric("all_three_detected_rate").measured > 0.85
    for i, expected in enumerate((3.0, 6.0, 10.0), start=1):
        assert result.metric(f"mean_distance_resp{i}_m").measured == pytest.approx(
            expected, abs=0.4
        )

    session = ConcurrentRangingSession.build(
        responder_distances_m=[3.0, 6.0, 10.0], n_shapes=3, seed=99
    )
    benchmark(session.run_round)
