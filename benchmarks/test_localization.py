"""Bench EXP-L1 — Future-work extension: anchor-based localization."""

from repro.channel.geometry import Point
from repro.experiments import localization_exp
from repro.localization.anchors import AnchorNetwork


def test_localization(benchmark):
    result = localization_exp.run(n_waypoints=16)
    print()
    print(result.render())

    assert result.metric("median_error_m").measured < 0.25
    assert result.metric("valid_fix_rate").measured > 0.8

    network = AnchorNetwork(localization_exp.ANCHORS, seed=5, n_slots=4,
                            n_shapes=1)
    benchmark(network.locate, Point(5.0, 4.0))
