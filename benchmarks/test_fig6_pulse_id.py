"""Bench EXP-F6 — Fig. 6: identifying two responders by pulse shape."""

from repro.experiments import fig6_pulse_id


def test_fig6_pulse_id(benchmark):
    result = fig6_pulse_id.run(trials=150)
    print()
    print(result.render())

    assert result.metric("both_detected_rate").measured > 0.95
    assert result.metric("both_identified_rate").measured > 0.95

    benchmark(fig6_pulse_id.run, trials=3, seed=123)
