"""Bench EXP-F2 — Fig. 2: exemplary estimated CIR."""

from repro.experiments import fig2_cir


def test_fig2_cir(benchmark):
    result = fig2_cir.run()
    print()
    print(result.render())

    # Shape criteria: dominant LOS plus five resolvable reflections.
    assert result.metric("detected_components").measured == 6
    assert result.metric("snr_db").measured > 20

    benchmark(fig2_cir.capture_example_cir)
