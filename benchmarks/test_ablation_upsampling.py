"""Bench EXP-A5 — FFT upsampling factor ablation (Sect. IV step 1)."""

from repro.experiments import ablation_upsampling


def test_ablation_upsampling(benchmark):
    result = ablation_upsampling.run(trials=80)
    print()
    print(result.render())

    # Shape: upsampling buys a clear ToA precision improvement.
    assert result.metric("improvement_1x_to_8x").measured > 1.5

    benchmark(ablation_upsampling.toa_precision, 8, 5,
              __import__("numpy").random.default_rng(1))
