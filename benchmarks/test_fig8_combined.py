"""Bench EXP-F8 — Fig. 8: nine responders via RPM x pulse shaping."""

from repro.experiments import fig8_combined


def test_fig8_combined(benchmark):
    result = fig8_combined.run(trials=60)
    print()
    print(result.render())

    # Shape criteria: essentially all nine responders identified per
    # round, from a 12-capacity scheme, as the paper's figure depicts.
    assert result.metric("mean_identified_of_9").measured > 8.2
    assert result.metric("capacity").measured == 12
    assert result.metric("median_abs_error_m").measured < 0.3

    session = fig8_combined.build_session(seed=7)
    benchmark(session.run_round)
