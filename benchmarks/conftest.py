"""Benchmark-suite configuration.

Each benchmark module reproduces one table/figure of the paper: it runs
the experiment at a meaningful trial count, prints the reproduced table
next to the paper's reference values, asserts the *shape* criteria
(who wins, rough factors, monotonicities), and times the experiment's
computational kernel with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_configure(config):
    # Benchmarks print reproduction tables; force -s style output so the
    # tables are visible in the default invocation.
    config.option.capture = "no"
