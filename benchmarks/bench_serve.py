#!/usr/bin/env python
"""Benchmark: streaming ranging service vs the offline batched engine.

Measures what serving costs on top of the raw engine and writes
``BENCH_serve.json``:

* **offline** — the pool's CIRs through :func:`repro.core.batch.
  detect_batch` in groups of B on one thread: the engine-ceiling
  items/second the service is judged against.
* **equivalence** — the same CIRs through a single-shard
  :class:`~repro.serve.service.RangingService` and compared against the
  offline results response-by-response; any mismatch is a divergence.
* **streaming** — a sharded service under a saturating
  :mod:`repro.serve.loadgen` replay: sustained ok/second, latency
  quantiles, flush-cause split, backpressure counters, and the
  exactly-once accounting verdict.
* **multiprocess** — the same replay against the in-process deployment
  and a K-worker :class:`~repro.serve.supervisor.RangingServer` (both
  through :class:`~repro.serve.client.AsyncRangingClient`), plus one
  worker-kill/recovery pass that SIGKILLs a worker mid-load and checks
  that supervision restarts it with zero lost requests.

Gates (non-zero exit, so CI can run this as the serve smoke job):

* any streaming/offline divergence,
* a broken accounting invariant (lost or duplicated requests) in any
  replay, including the worker-kill pass,
* sustained streaming throughput below
  ``THROUGHPUT_FLOOR_RATIO`` x the offline single-thread baseline
  (the >20 % regression budget: batching + sharding must keep the
  service within striking distance of the raw engine),
* a kill pass that never restarted a worker,
* K-worker throughput below ``MP_SPEEDUP_FLOOR`` x the single-process
  deployment — enforced only on machines with at least
  ``MP_GATE_MIN_CORES`` cores (fork parallelism cannot beat one core's
  engine on a one-core box; there the ratio is report-only).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --out /tmp/b.json
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --mp-only
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.batch import detect_batch
from repro.core.detection import SearchAndSubtractConfig
from repro.serve import (
    AsyncRangingClient,
    EngineConfig,
    RangingRequest,
    RangingService,
    ServeConfig,
)
from repro.serve.loadgen import LoadgenConfig, run_load, synthetic_pool
from repro.signal.templates import TemplateBank

#: Streaming must sustain at least this fraction of the offline
#: single-thread engine throughput (i.e. at most a 20 % regression).
THROUGHPUT_FLOOR_RATIO = 0.8

#: K workers must beat the single-process deployment by at least this
#: factor — but only where the hardware can express it.
MP_SPEEDUP_FLOOR = 2.0
MP_GATE_MIN_CORES = 4
MP_WORKERS = 4


def bench_offline(pool, bank, config, batch_size, repeats):
    """Single-thread batched-engine baseline over the pool, warmed."""
    cirs = np.stack([cir for cir, _ in pool])
    stds = [noise_std for _, noise_std in pool]

    def _pass():
        results = []
        for start in range(0, len(pool), batch_size):
            results.extend(
                detect_batch(
                    cirs[start:start + batch_size],
                    list(bank),
                    TS,
                    config=config,
                    noise_std=stds[start:start + batch_size],
                )
            )
        return results

    reference = _pass()  # warm pass builds the plans
    t0 = time.perf_counter()
    for _ in range(repeats):
        _pass()
    elapsed = time.perf_counter() - t0
    items = repeats * len(pool)
    return reference, {
        "items": items,
        "batch_size": batch_size,
        "elapsed_s": elapsed,
        "items_per_s": items / elapsed if elapsed > 0 else float("inf"),
        "ms_per_item": 1e3 * elapsed / items,
    }


async def _check_equivalence(pool, engine, batch_size, reference):
    """Pool through a single-shard service vs the offline reference."""
    service = RangingService.build(
        ServeConfig(
            n_shards=1,
            batch_size=batch_size,
            max_batch_delay_s=0.01,
            engine=engine,
        )
    )
    await service.start()
    try:
        results = await asyncio.gather(
            *[
                service.submit(
                    RangingRequest("bench", k, cir, noise_std)
                )
                for k, (cir, noise_std) in enumerate(pool)
            ]
        )
    finally:
        await service.stop()
    divergences = sum(
        1
        for result, offline in zip(results, reference)
        if result.status != "ok" or result.responses != offline
    )
    return divergences


async def _bench_streaming(pool, engine, args):
    """Saturating replay: sustained throughput and service metrics."""
    service = RangingService.build(
        ServeConfig(
            n_shards=args.shards,
            batch_size=args.batch_size,
            max_batch_delay_s=0.005,
            queue_depth=args.queue_depth,
            default_deadline_s=None,  # measure throughput, not shedding
            engine=engine,
        )
    )
    await service.start()
    try:
        report = await run_load(
            service,
            pool,
            LoadgenConfig(
                sessions=args.sessions,
                rate=args.rate,
                duration_s=args.duration,
                seed=1,
            ),
        )
    finally:
        await service.stop()
    metrics = service.metrics
    return {
        "sessions": args.sessions,
        "offered_rate_rps": args.rate,
        "duration_s": report.duration_s,
        "sent": report.sent,
        "ok": report.ok,
        "rejected": report.rejected,
        "shed": report.shed,
        "errors": report.error,
        "accounting_ok": report.accounting_ok,
        "throughput_rps": (
            report.ok / report.duration_s if report.duration_s > 0 else 0.0
        ),
        "latency_p50_s": report.latency_quantile(0.5),
        "latency_p95_s": report.latency_quantile(0.95),
        "latency_p99_s": report.latency_quantile(0.99),
        "shards": args.shards,
        "batch_size": service.batch_size,
        "flush_full": metrics.counter("serve.flush_full").value,
        "flush_deadline": metrics.counter("serve.flush_deadline").value,
        "batch_fallbacks": metrics.counter("serve.batch_fallbacks").value,
        "engine_passes": metrics.counter("serve.engine_passes").value,
    }


def _deployment_config(engine, args, workers, **overrides):
    options = {
        "n_shards": args.shards,
        "batch_size": args.batch_size,
        "max_batch_delay_s": 0.005,
        "queue_depth": args.queue_depth,
        "default_deadline_s": None,
        "engine": engine,
        "workers": workers,
    }
    options.update(overrides)
    return ServeConfig(**options)


async def _replay_deployment(pool, config, args):
    """One loadgen replay through a client-built deployment."""
    async with AsyncRangingClient(config) as client:
        report = await run_load(
            client,
            pool,
            LoadgenConfig(
                sessions=args.sessions,
                rate=args.rate,
                duration_s=args.duration,
                seed=1,
            ),
        )
    summary = report.as_dict()
    summary["workers"] = config.workers
    return summary


async def _bench_kill_recovery(pool, engine, args):
    """SIGKILL one of two workers mid-load; supervision must recover.

    Fast heartbeats keep the detect-and-restart turnaround well inside
    the replay window; the gate is the loadgen's exactly-once verdict
    (``sent == accounted``: the killed worker's in-flight requests were
    re-homed, not lost) plus at least one observed restart.
    """
    config = _deployment_config(
        engine,
        args,
        workers=2,
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=0.5,
    )
    duration = max(1.0, min(args.duration, 3.0))
    client = AsyncRangingClient(config)
    await client.start()
    try:

        async def _assassin():
            await asyncio.sleep(duration / 3.0)
            client.deployment.worker_processes[0].kill()

        killer = asyncio.ensure_future(_assassin())
        report = await run_load(
            client,
            pool,
            LoadgenConfig(
                sessions=args.sessions,
                rate=args.rate,
                duration_s=duration,
                seed=2,
            ),
        )
        await killer
        restarts = client.deployment.restarts
    finally:
        await client.close(drain=True)
    summary = report.as_dict()
    summary["restarts"] = restarts
    return summary


def bench_multiprocess(pool, engine, args):
    """Single-process vs K-worker throughput, plus the kill pass."""
    cores = os.cpu_count() or 1
    single = asyncio.run(
        _replay_deployment(pool, _deployment_config(engine, args, 0), args)
    )
    print(
        f"mp single: {single['throughput_rps']:.0f} ok/s "
        f"(workers=0, p99 {1e3 * single['latency_p99_s']:.1f} ms)"
    )
    multi = asyncio.run(
        _replay_deployment(
            pool, _deployment_config(engine, args, MP_WORKERS), args
        )
    )
    print(
        f"mp fleet : {multi['throughput_rps']:.0f} ok/s "
        f"(workers={MP_WORKERS}, "
        f"p99 {1e3 * multi['latency_p99_s']:.1f} ms)"
    )
    speedup = (
        multi["throughput_rps"] / single["throughput_rps"]
        if single["throughput_rps"] > 0
        else float("inf")
    )
    gate_active = cores >= MP_GATE_MIN_CORES
    kill = asyncio.run(_bench_kill_recovery(pool, engine, args))
    print(
        f"mp kill  : {kill['ok']}/{kill['sent']} ok, "
        f"restarts={kill['restarts']}, "
        f"accounting_ok={kill['accounting_ok']}"
    )
    return {
        "workers": MP_WORKERS,
        "cores": cores,
        "single_process": single,
        "multi_process": multi,
        "speedup": speedup,
        "speedup_floor": MP_SPEEDUP_FLOOR,
        "speedup_gate_active": gate_active,
        "kill_recovery": kill,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: shorter replay (same gates)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-mp",
        action="store_true",
        help="skip the multi-process section",
    )
    parser.add_argument(
        "--mp-only",
        action="store_true",
        help="run only the multi-process section (plus its baseline)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--queue-depth", type=int, default=128)
    parser.add_argument("--cir-length", type=int, default=None)
    args = parser.parse_args(argv)
    if args.skip_mp and args.mp_only:
        parser.error("--skip-mp and --mp-only are mutually exclusive")

    cir_length = args.cir_length or (257 if args.quick else 509)
    if args.sessions is None:
        args.sessions = 32 if args.quick else 64
    if args.duration is None:
        args.duration = 2.0 if args.quick else 10.0

    bank = TemplateBank.paper_bank(3)
    config = SearchAndSubtractConfig()
    pool = synthetic_pool(
        bank, pool_size=32, cir_length=cir_length, seed=2018
    )
    engine = EngineConfig(
        bank, TS, mode="detect", config=config, cir_length=cir_length
    )

    reference, offline = bench_offline(
        pool, bank, config, args.batch_size, repeats=2 if args.quick else 6
    )
    print(
        f"offline : {offline['items_per_s']:.0f} items/s "
        f"({offline['ms_per_item']:.2f} ms/item, B={args.batch_size}, "
        f"1 thread)"
    )

    # Offer ~2x what a single thread can do so the service has to batch
    # and shard to keep up — a saturating, backpressure-exercising load.
    if args.rate is None:
        args.rate = 2.0 * offline["items_per_s"]

    report = {
        "benchmark": "serve",
        "quick": bool(args.quick),
        "cir_length": cir_length,
        "offline": offline,
        "throughput_floor_ratio": THROUGHPUT_FLOOR_RATIO,
    }
    failed = False

    if not args.mp_only:
        divergences = asyncio.run(
            _check_equivalence(pool, engine, args.batch_size, reference)
        )
        print(f"equiv   : {divergences}/{len(pool)} divergences vs offline")

        streaming = asyncio.run(_bench_streaming(pool, engine, args))
        print(
            f"streaming: {streaming['throughput_rps']:.0f} ok/s sustained "
            f"({streaming['shards']} shards, B={streaming['batch_size']}, "
            f"p99 {1e3 * streaming['latency_p99_s']:.1f} ms, "
            f"rejected {streaming['rejected']})"
        )

        ratio = (
            streaming["throughput_rps"] / offline["items_per_s"]
            if offline["items_per_s"] > 0
            else float("inf")
        )
        report["divergences"] = divergences
        report["streaming"] = streaming
        report["streaming_vs_offline_ratio"] = ratio

        if divergences:
            print(
                f"ERROR: {divergences} streaming/offline divergences",
                file=sys.stderr,
            )
            failed = True
        if not streaming["accounting_ok"]:
            acked = (
                streaming["ok"]
                + streaming["rejected"]
                + streaming["shed"]
                + streaming["errors"]
            )
            print(
                "ERROR: accounting broken — "
                f"sent {streaming['sent']} != acked {acked}",
                file=sys.stderr,
            )
            failed = True
        if ratio < THROUGHPUT_FLOOR_RATIO:
            print(
                f"ERROR: streaming sustained only {ratio:.2f}x the "
                f"offline baseline (floor {THROUGHPUT_FLOOR_RATIO})",
                file=sys.stderr,
            )
            failed = True

    if not args.skip_mp:
        multiprocess = bench_multiprocess(pool, engine, args)
        report["multiprocess"] = multiprocess
        for label in ("single_process", "multi_process", "kill_recovery"):
            if not multiprocess[label]["accounting_ok"]:
                print(
                    f"ERROR: {label} replay lost requests "
                    f"(sent {multiprocess[label]['sent']} != accounted "
                    f"{multiprocess[label]['accounted']})",
                    file=sys.stderr,
                )
                failed = True
        if multiprocess["kill_recovery"]["restarts"] < 1:
            print(
                "ERROR: worker-kill pass observed no restart — "
                "supervision never recovered the killed worker",
                file=sys.stderr,
            )
            failed = True
        if (
            multiprocess["speedup_gate_active"]
            and multiprocess["speedup"] < MP_SPEEDUP_FLOOR
        ):
            print(
                f"ERROR: {MP_WORKERS} workers sustained only "
                f"{multiprocess['speedup']:.2f}x the single-process "
                f"deployment (floor {MP_SPEEDUP_FLOOR}x on "
                f"{multiprocess['cores']} cores)",
                file=sys.stderr,
            )
            failed = True
        elif not multiprocess["speedup_gate_active"]:
            print(
                f"mp speedup {multiprocess['speedup']:.2f}x is "
                f"report-only on {multiprocess['cores']} core(s) "
                f"(gate needs >= {MP_GATE_MIN_CORES})"
            )

    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
