#!/usr/bin/env python
"""Benchmark: streaming ranging service vs the offline batched engine.

Measures what serving costs on top of the raw engine and writes
``BENCH_serve.json``:

* **offline** — the pool's CIRs through :func:`repro.core.batch.
  detect_batch` in groups of B on one thread: the engine-ceiling
  items/second the service is judged against.
* **equivalence** — the same CIRs through a single-shard
  :class:`~repro.serve.service.RangingService` and compared against the
  offline results response-by-response; any mismatch is a divergence.
* **streaming** — a sharded service under a saturating
  :mod:`repro.serve.loadgen` replay: sustained ok/second, latency
  quantiles, flush-cause split, backpressure counters, and the
  exactly-once accounting verdict.

Gates (non-zero exit, so CI can run this as the serve smoke job):

* any streaming/offline divergence,
* a broken accounting invariant (lost or duplicated requests),
* sustained streaming throughput below
  ``THROUGHPUT_FLOOR_RATIO`` x the offline single-thread baseline
  (the >20 % regression budget: batching + sharding must keep the
  service within striking distance of the raw engine).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.constants import CIR_SAMPLING_PERIOD_S as TS
from repro.core.batch import detect_batch
from repro.core.detection import SearchAndSubtractConfig
from repro.serve import (
    EngineConfig,
    RangingRequest,
    RangingService,
    ServeConfig,
)
from repro.serve.loadgen import LoadgenConfig, run_load, synthetic_pool
from repro.signal.templates import TemplateBank

#: Streaming must sustain at least this fraction of the offline
#: single-thread engine throughput (i.e. at most a 20 % regression).
THROUGHPUT_FLOOR_RATIO = 0.8


def bench_offline(pool, bank, config, batch_size, repeats):
    """Single-thread batched-engine baseline over the pool, warmed."""
    cirs = np.stack([cir for cir, _ in pool])
    stds = [noise_std for _, noise_std in pool]

    def _pass():
        results = []
        for start in range(0, len(pool), batch_size):
            results.extend(
                detect_batch(
                    cirs[start:start + batch_size],
                    list(bank),
                    TS,
                    config=config,
                    noise_std=stds[start:start + batch_size],
                )
            )
        return results

    reference = _pass()  # warm pass builds the plans
    t0 = time.perf_counter()
    for _ in range(repeats):
        _pass()
    elapsed = time.perf_counter() - t0
    items = repeats * len(pool)
    return reference, {
        "items": items,
        "batch_size": batch_size,
        "elapsed_s": elapsed,
        "items_per_s": items / elapsed if elapsed > 0 else float("inf"),
        "ms_per_item": 1e3 * elapsed / items,
    }


async def _check_equivalence(pool, engine, batch_size, reference):
    """Pool through a single-shard service vs the offline reference."""
    service = RangingService(
        engine,
        ServeConfig(
            n_shards=1, batch_size=batch_size, max_batch_delay_s=0.01
        ),
    )
    await service.start()
    try:
        results = await asyncio.gather(
            *[
                service.submit(
                    RangingRequest("bench", k, cir, noise_std)
                )
                for k, (cir, noise_std) in enumerate(pool)
            ]
        )
    finally:
        await service.stop()
    divergences = sum(
        1
        for result, offline in zip(results, reference)
        if result.status != "ok" or result.responses != offline
    )
    return divergences


async def _bench_streaming(pool, engine, args):
    """Saturating replay: sustained throughput and service metrics."""
    service = RangingService(
        engine,
        ServeConfig(
            n_shards=args.shards,
            batch_size=args.batch_size,
            max_batch_delay_s=0.005,
            queue_depth=args.queue_depth,
            default_deadline_s=None,  # measure throughput, not shedding
        ),
    )
    await service.start()
    try:
        report = await run_load(
            service,
            pool,
            LoadgenConfig(
                sessions=args.sessions,
                rate=args.rate,
                duration_s=args.duration,
                seed=1,
            ),
        )
    finally:
        await service.stop()
    metrics = service.metrics
    return {
        "sessions": args.sessions,
        "offered_rate_rps": args.rate,
        "duration_s": report.duration_s,
        "sent": report.sent,
        "ok": report.ok,
        "rejected": report.rejected,
        "shed": report.shed,
        "errors": report.error,
        "accounting_ok": report.accounting_ok,
        "throughput_rps": (
            report.ok / report.duration_s if report.duration_s > 0 else 0.0
        ),
        "latency_p50_s": report.latency_quantile(0.5),
        "latency_p95_s": report.latency_quantile(0.95),
        "latency_p99_s": report.latency_quantile(0.99),
        "shards": args.shards,
        "batch_size": service.batch_size,
        "flush_full": metrics.counter("serve.flush_full").value,
        "flush_deadline": metrics.counter("serve.flush_deadline").value,
        "batch_fallbacks": metrics.counter("serve.batch_fallbacks").value,
        "engine_passes": metrics.counter("serve.engine_passes").value,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: shorter replay (same gates)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--queue-depth", type=int, default=128)
    parser.add_argument("--cir-length", type=int, default=None)
    args = parser.parse_args(argv)

    cir_length = args.cir_length or (257 if args.quick else 509)
    if args.sessions is None:
        args.sessions = 32 if args.quick else 64
    if args.duration is None:
        args.duration = 2.0 if args.quick else 10.0

    bank = TemplateBank.paper_bank(3)
    config = SearchAndSubtractConfig()
    pool = synthetic_pool(
        bank, pool_size=32, cir_length=cir_length, seed=2018
    )
    engine = EngineConfig(
        bank, TS, mode="detect", config=config, cir_length=cir_length
    )

    reference, offline = bench_offline(
        pool, bank, config, args.batch_size, repeats=2 if args.quick else 6
    )
    print(
        f"offline : {offline['items_per_s']:.0f} items/s "
        f"({offline['ms_per_item']:.2f} ms/item, B={args.batch_size}, "
        f"1 thread)"
    )

    # Offer ~2x what a single thread can do so the service has to batch
    # and shard to keep up — a saturating, backpressure-exercising load.
    if args.rate is None:
        args.rate = 2.0 * offline["items_per_s"]

    divergences = asyncio.run(
        _check_equivalence(pool, engine, args.batch_size, reference)
    )
    print(f"equiv   : {divergences}/{len(pool)} divergences vs offline")

    streaming = asyncio.run(_bench_streaming(pool, engine, args))
    print(
        f"streaming: {streaming['throughput_rps']:.0f} ok/s sustained "
        f"({streaming['shards']} shards, B={streaming['batch_size']}, "
        f"p99 {1e3 * streaming['latency_p99_s']:.1f} ms, "
        f"rejected {streaming['rejected']})"
    )

    ratio = (
        streaming["throughput_rps"] / offline["items_per_s"]
        if offline["items_per_s"] > 0
        else float("inf")
    )
    report = {
        "benchmark": "serve",
        "quick": bool(args.quick),
        "cir_length": cir_length,
        "offline": offline,
        "divergences": divergences,
        "streaming": streaming,
        "streaming_vs_offline_ratio": ratio,
        "throughput_floor_ratio": THROUGHPUT_FLOOR_RATIO,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path} (streaming/offline ratio {ratio:.2f})")

    failed = False
    if divergences:
        print(
            f"ERROR: {divergences} streaming/offline divergences",
            file=sys.stderr,
        )
        failed = True
    if not streaming["accounting_ok"]:
        print(
            "ERROR: accounting broken — "
            f"sent {streaming['sent']} != acked "
            f"{streaming['ok'] + streaming['rejected'] + streaming['shed'] + streaming['errors']}",
            file=sys.stderr,
        )
        failed = True
    if ratio < THROUGHPUT_FLOOR_RATIO:
        print(
            f"ERROR: streaming sustained only {ratio:.2f}x the offline "
            f"baseline (floor {THROUGHPUT_FLOOR_RATIO})",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
