"""Bench EXP-S8 — Sect. VIII: scalability and message cost."""

from repro.experiments import sect8_scalability
from repro.protocol.scheduling import concurrent_round_cost, scheduled_round_cost


def test_sect8_scalability(benchmark):
    result = sect8_scalability.run()
    print()
    print(result.render())

    # The paper's exact claims.
    assert result.metric("n_rpm_75m").measured == 4
    assert result.metric("n_max_20m").measured >= 1500
    assert result.metric("scheduled_messages_n100").measured == 9900
    assert result.metric("concurrent_messages_n100").measured == 200
    assert result.metric("energy_gain_n100").measured > 1.0

    def sweep():
        for n in (2, 10, 50, 100):
            scheduled_round_cost(n)
            concurrent_round_cost(n)

    benchmark(sweep)
