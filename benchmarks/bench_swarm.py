#!/usr/bin/env python
"""Benchmark: swarm event-loop throughput at city scale.

Runs the :class:`~repro.netsim.swarm.SwarmScenario` at a 500-responder
population (the mid-point of the Sect. VIII sweep) and writes
``BENCH_swarm.json``:

* **rounds/s** — wall-clock throughput of the full per-round path
  (medium synthesis -> capture -> batched classification -> anchor-slot
  decode -> localization), at ``shards=1`` and ``shards=4``;
* **identification** — id rate and median ranging error of the run
  (sanity that the benchmark measured real decodes, not empty rounds);
* **shard check** — digests of both shard counts, compared.

Gates (non-zero exit, so CI can run this as the swarm smoke job):

* any shard divergence (``shards=1`` vs ``shards=4`` digests differ),
* zero identified responders (the loop measured nothing),
* throughput below ``ROUNDS_PER_S_FLOOR`` (a collapse, not a wobble —
  CI machines vary, so the floor is deliberately conservative).

Usage::

    PYTHONPATH=src python benchmarks/bench_swarm.py
    PYTHONPATH=src python benchmarks/bench_swarm.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments.swarm_scale import swarm_config
from repro.netsim.swarm import SwarmScenario

#: Conservative wall-clock floor [rounds/s]: interactive runs measure
#: ~10-15 on a laptop-class core; below 1 the loop has collapsed.
ROUNDS_PER_S_FLOOR = 1.0

N_RESPONDERS = 500
SEED = 71


def run_benchmark(epochs: int) -> dict:
    report: dict = {
        "n_responders": N_RESPONDERS,
        "epochs": epochs,
        "seed": SEED,
        "shards": {},
    }
    digests = {}
    for shards in (1, 4):
        scenario = SwarmScenario(
            swarm_config(N_RESPONDERS), seed=SEED, shards=shards
        )
        start = time.perf_counter()
        result = scenario.run(epochs)
        elapsed = time.perf_counter() - start
        digests[shards] = result.digest()
        report["shards"][str(shards)] = {
            "rounds": result.rounds,
            "polled": result.polled,
            "identified": result.identified,
            "id_rate": result.id_rate,
            "median_abs_error_m": result.median_abs_error_m,
            "coverage": result.coverage,
            "elapsed_s": elapsed,
            "rounds_per_s": result.rounds / elapsed if elapsed > 0 else 0.0,
            "digest": result.digest(),
        }
    report["shard_divergence"] = digests[1] != digests[4]
    return report


def evaluate_gates(report: dict) -> list:
    failures = []
    if report["shard_divergence"]:
        failures.append("shards=1 and shards=4 digests diverge")
    for shards, stats in report["shards"].items():
        if stats["identified"] == 0:
            failures.append(f"shards={shards}: zero identified responders")
        if stats["rounds_per_s"] < ROUNDS_PER_S_FLOOR:
            failures.append(
                f"shards={shards}: {stats['rounds_per_s']:.2f} rounds/s "
                f"below floor {ROUNDS_PER_S_FLOOR}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Swarm event-loop throughput benchmark "
        f"({N_RESPONDERS} responders)."
    )
    parser.add_argument(
        "--epochs", type=int, default=10, help="swarm epochs per shard count"
    )
    parser.add_argument(
        "--quick", action="store_true", help="short run for CI smoke"
    )
    parser.add_argument(
        "--out", default="BENCH_swarm.json", metavar="FILE",
        help="write the JSON report here",
    )
    args = parser.parse_args(argv)
    epochs = min(args.epochs, 4) if args.quick else args.epochs

    report = run_benchmark(epochs)
    failures = evaluate_gates(report)
    report["failures"] = failures

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for shards, stats in report["shards"].items():
        print(
            f"shards={shards}: {stats['rounds_per_s']:.2f} rounds/s, "
            f"id rate {stats['id_rate']:.3f}, "
            f"med |err| {stats['median_abs_error_m']:.3f} m"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"all gates passed; report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
