"""Bench EXP-T1 — Table I: pulse-shape identification accuracy.

The paper runs 1000 trials per cell; the default here uses 150 per cell
to keep the suite fast — raise ``TRIALS`` for a full-fidelity run.
"""

TRIALS = 150

from repro.experiments import table1_pulse_id


def test_table1_pulse_id_accuracy(benchmark):
    result = table1_pulse_id.run(trials=TRIALS)
    print()
    print(result.render())

    # Shape criterion: high accuracy in every cell (paper: >= 99.2 %).
    for comparison in result.comparisons:
        assert comparison.measured > 90.0, (
            f"{comparison.name}: {comparison.measured:.1f} % "
            f"(paper {comparison.paper} %)"
        )

    benchmark(
        table1_pulse_id._identification_rate, 8.0, 0xC8, 3, 42
    )
