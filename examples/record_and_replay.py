#!/usr/bin/env python
"""Record-and-replay: offline CIR processing, the research workflow.

Phase 1 "in the field": a gateway logs 25 concurrent-ranging CIR
captures to an .npz archive — exactly the artifact a real DW1000 logger
produces (complex taps + RX timestamp + noise estimate; no ground
truth).

Phase 2 "back at the desk": the archive is loaded and the paper's full
detection/identification pipeline runs on the stored traces.  Swap the
archive for one recorded from real hardware and the second phase runs
unchanged.

Phase 3 "a bad day in the field": the same gateway logs a campaign run
under injected faults (responder dropout + impulsive interference) with
a resilience policy — partial rounds are kept, not crashed on — and the
offline pass quantifies how much of the archive survives.

Run:  python examples/record_and_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.tables import Table
from repro.core.detection import SearchAndSubtractConfig
from repro.core.pulse_id import PulseShapeClassifier
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.radio.capture_io import load_dataset, save_dataset
from repro.signal.templates import TemplateBank

N_ROUNDS = 25
DISTANCES = [3.0, 6.0, 10.0]


def record(path: Path) -> None:
    session = ConcurrentRangingSession.build(
        responder_distances_m=DISTANCES,
        n_shapes=3,
        seed=2024,
        compensate_tx_quantization=True,
    )
    captures = [session.run_round().capture for _ in range(N_ROUNDS)]
    save_dataset(path, captures)
    print(
        f"recorded {N_ROUNDS} captures "
        f"({path.stat().st_size / 1024:.0f} KiB) to {path.name}"
    )


def replay(path: Path) -> None:
    captures = load_dataset(path)
    bank = TemplateBank.paper_bank(3)
    classifier = PulseShapeClassifier(
        bank, SearchAndSubtractConfig(max_responses=3, upsample_factor=8)
    )

    shape_counts = np.zeros((3,), dtype=int)
    spreads = []
    for capture in captures:
        classified = classifier.classify(
            capture.samples, capture.sampling_period_s, noise_std=capture.noise_std
        )
        for response in classified:
            shape_counts[response.shape_index] += 1
        delays = sorted(c.delay_s for c in classified)
        spreads.append((delays[-1] - delays[0]) * 1e9)

    table = Table(["quantity", "value"], title="offline analysis of the archive")
    table.add_row(["captures processed", len(captures)])
    table.add_row(["responses per capture", 3])
    for i, count in enumerate(shape_counts):
        table.add_row([f"responses classified s{i + 1}", int(count)])
    table.add_row(["mean first-to-last response spread [ns]",
                   float(np.mean(spreads))])
    table.print()
    expected_spread = 2 * (DISTANCES[-1] - DISTANCES[0]) / 0.299792458  # ns
    print(
        f"\nexpected spread from geometry (Eq. 4): "
        f"2*(10-3)m / c = {expected_spread:.1f} ns"
    )


def record_faulted(path: Path) -> None:
    """A campaign logged under injected faults, resiliently."""
    from repro.faults import (
        FaultPlan,
        ImpulsiveInterference,
        ResponderDropout,
    )
    from repro.protocol.campaign import RangingCampaign, ResiliencePolicy

    plan = FaultPlan(
        [
            ResponderDropout(0.3),
            ImpulsiveInterference(
                burst_probability=0.4, amplitude_scale=0.9
            ),
        ],
        seed=7,
    )
    session = ConcurrentRangingSession.build(
        responder_distances_m=DISTANCES,
        n_shapes=3,
        seed=2024,
        compensate_tx_quantization=True,
        faults=plan,
    )
    campaign = RangingCampaign(
        session,
        round_interval_s=0.05,
        resilience=ResiliencePolicy(
            quorum_fraction=0.6, max_round_retries=2, quarantine_after=3
        ),
    )
    result = campaign.run(N_ROUNDS)
    # Partial rounds carry no capture — the gateway logs what it got.
    captures = [r.capture for r in result.rounds if r.capture is not None]
    save_dataset(path, captures)
    print(
        f"faulted campaign: {len(captures)}/{N_ROUNDS} rounds captured, "
        f"{result.retries} retries, {result.partial_rounds} partial, "
        f"faults injected: {result.faults_injected}"
    )


def replay_faulted(path: Path) -> None:
    """Offline pass over the faulted archive: how much survived?"""
    captures = load_dataset(path)
    bank = TemplateBank.paper_bank(3)
    classifier = PulseShapeClassifier(
        bank,
        SearchAndSubtractConfig(
            max_responses=3, upsample_factor=8, min_peak_snr=8.0
        ),
    )
    per_capture = [
        len(
            classifier.classify(
                capture.samples,
                capture.sampling_period_s,
                noise_std=capture.noise_std,
            )
        )
        for capture in captures
    ]
    full = sum(1 for n in per_capture if n >= len(DISTANCES))
    table = Table(
        ["quantity", "value"], title="offline analysis, faulted archive"
    )
    table.add_row(["captures in archive", len(captures)])
    table.add_row(["mean responses / capture", float(np.mean(per_capture))])
    table.add_row([f"captures with all {len(DISTANCES)} responses", full])
    table.print()


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gateway_log.npz"
        record(path)
        print()
        replay(path)
        print()
        faulted_path = Path(tmp) / "gateway_log_faulted.npz"
        record_faulted(faulted_path)
        print()
        replay_faulted(faulted_path)


if __name__ == "__main__":
    main()
