#!/usr/bin/env python
"""Cooperative localization — the other half of the paper's future work.

Two robots in a 10 m x 10 m hall.  Robot B can only see two anchors
(the others are blocked), so on its own its 2-D position is ambiguous.
But each robot's concurrent-ranging round also picks up the *other
robot's* response, and the joint (cooperative) solver uses that
robot-to-robot range to pin B down.

Each position update still costs each robot one broadcast + one
aggregate reception.

Run:  python examples/cooperative_swarm.py
"""

import numpy as np

from repro.channel.geometry import Point
from repro.channel.stochastic import IndoorEnvironment
from repro.core.detection import SearchAndSubtractConfig
from repro.core.rpm import SlotPlan
from repro.core.scheme import CombinedScheme
from repro.localization.cooperative import RangeMeasurement, solve_cooperative
from repro.netsim.medium import Medium
from repro.netsim.node import Node
from repro.protocol.concurrent import ConcurrentRangingSession
from repro.signal.templates import TemplateBank

ANCHOR_POSITIONS = {
    0: Point(0.5, 0.5),
    1: Point(9.5, 0.5),
    2: Point(9.5, 9.5),
    3: Point(0.5, 9.5),
}
ROBOT_A = Point(3.0, 4.0)
ROBOT_B = Point(7.0, 6.5)

#: Anchors robot B can actually range with (the rest are blocked).
B_VISIBLE_ANCHORS = (0, 1)


def run_round(medium, initiator, responders, rng):
    """One concurrent round; returns {responder_node_id: distance}."""
    scheme = CombinedScheme(
        SlotPlan.for_range(20.0, n_slots=len(responders)),
        TemplateBank((0x93,)),
    )
    session = ConcurrentRangingSession(
        medium=medium,
        initiator=initiator,
        responders=responders,
        scheme=scheme,
        detector_config=SearchAndSubtractConfig(
            max_responses=len(responders) + 2, upsample_factor=8,
            min_peak_snr=5.0,
        ),
        compensate_tx_quantization=True,
        rng=rng,
    )
    result = session.run_round()
    distances = {}
    for outcome in result.outcomes:
        if outcome.identified and outcome.estimated_distance_m is not None:
            node = responders[outcome.responder_id]
            distances[node.node_id] = outcome.estimated_distance_m
    return distances


def main():
    rng = np.random.default_rng(99)
    medium = Medium(environment=IndoorEnvironment.hallway(), rng=rng)
    anchors = {
        aid: Node.at(aid, p.x, p.y, rng=rng)
        for aid, p in ANCHOR_POSITIONS.items()
    }
    robot_a = Node.at(10, ROBOT_A.x, ROBOT_A.y, rng=rng)
    robot_b = Node.at(11, ROBOT_B.x, ROBOT_B.y, rng=rng)
    medium.add_nodes(list(anchors.values()) + [robot_a, robot_b])

    # Robot A's round: all four anchors + robot B respond.
    a_ranges = run_round(
        medium, robot_a, list(anchors.values()) + [robot_b], rng
    )
    # Robot B's round: only its two visible anchors + robot A.
    b_ranges = run_round(
        medium, robot_b, [anchors[i] for i in B_VISIBLE_ANCHORS] + [robot_a],
        rng,
    )

    measurements = [
        RangeMeasurement(10, other, d) for other, d in a_ranges.items()
    ] + [
        RangeMeasurement(11, other, d)
        for other, d in b_ranges.items()
        if other != 10  # A-B range already measured from A's side
    ]

    print("collected ranges:")
    for m in measurements:
        print(f"  node {m.node_a} <-> node {m.node_b}: {m.distance_m:6.3f} m")

    result = solve_cooperative(
        ANCHOR_POSITIONS,
        measurements,
        unknowns=[10, 11],
        initial={10: Point(5.0, 5.0), 11: Point(5.5, 5.5)},
    )
    print()
    for robot_id, truth in ((10, ROBOT_A), (11, ROBOT_B)):
        estimate = result.positions[robot_id]
        print(
            f"robot {robot_id}: estimated ({estimate.x:5.2f}, {estimate.y:5.2f}), "
            f"true ({truth.x:4.2f}, {truth.y:4.2f}), "
            f"error {estimate.distance_to(truth) * 100:5.1f} cm"
        )
    print(
        f"\njoint solve: {result.iterations} iterations, "
        f"rms residual {result.rms_residual_m * 100:.1f} cm"
    )
    print(
        "robot B saw only anchors 0 and 1 — alone it would be ambiguous; "
        "the A<->B range resolves it."
    )


if __name__ == "__main__":
    main()
