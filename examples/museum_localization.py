#!/usr/bin/env python
"""Museum visitor tracking — the paper's future-work direction.

A visitor badge (UWB tag) walks through a 10 m x 8 m gallery with four
anchors near the corners.  At every waypoint the badge runs ONE
concurrent ranging round (one broadcast, one aggregate reception) and
multilaterates its own position — against the 8 messages per fix that
scheduled SS-TWR to four anchors would cost.

Run:  python examples/museum_localization.py
"""

import numpy as np

from repro.channel.geometry import Point
from repro.localization.anchors import AnchorNetwork
from repro.localization.multilateration import gdop

GALLERY_ANCHORS = (
    Point(0.5, 0.5),
    Point(9.5, 0.5),
    Point(9.5, 7.5),
    Point(0.5, 7.5),
)


def visitor_path(n_steps: int):
    """A stroll past three exhibits."""
    exhibits = [Point(2.5, 2.0), Point(7.5, 3.0), Point(5.0, 6.5)]
    path = []
    for a, b in zip(exhibits, exhibits[1:]):
        for t in np.linspace(0.0, 1.0, n_steps // 2, endpoint=False):
            path.append(Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)))
    return path


def main():
    network = AnchorNetwork(
        GALLERY_ANCHORS,
        seed=7,
        n_slots=4,   # one RPM slot per anchor
        n_shapes=1,
    )
    path = visitor_path(16)
    fixes = network.track(path)

    print("step |  true position  |  estimated position | error   | anchors")
    print("-----+-----------------+---------------------+---------+--------")
    for i, fix in enumerate(fixes):
        print(
            f"  {i:2d} | ({fix.true_position.x:5.2f}, {fix.true_position.y:5.2f}) "
            f"| ({fix.estimate.x:6.2f}, {fix.estimate.y:6.2f})    "
            f"| {fix.error_m * 100:5.1f} cm | {fix.anchors_used}"
        )

    errors = np.array([fix.error_m for fix in fixes])
    print()
    print(f"median error : {np.median(errors) * 100:.1f} cm")
    print(f"p95 error    : {np.percentile(errors, 95) * 100:.1f} cm")
    print(f"gallery GDOP : {gdop(GALLERY_ANCHORS, Point(5.0, 4.0)):.2f}")
    print()
    print(
        f"messages per fix: 2 (concurrent) vs {2 * len(GALLERY_ANCHORS)} "
        f"(scheduled SS-TWR to each anchor)"
    )


if __name__ == "__main__":
    main()
