#!/usr/bin/env python
"""Warehouse asset tracking at scale — the Sect. VIII argument, end to end.

A warehouse gateway needs the distance to every tagged asset in radio
range.  This example (i) sizes the combined RPM x pulse-shaping scheme
for a 20 m operating range, (ii) runs an actual 9-responder concurrent
round through the full simulator, and (iii) compares network cost
(messages, airtime, energy, duration) against scheduled SS-TWR as the
fleet grows.

Run:  python examples/warehouse_scalability.py
"""

from repro.analysis.tables import Table
from repro.core.rpm import SlotPlan, paper_slot_count, safe_slot_count
from repro.experiments.fig8_combined import build_session
from repro.protocol.scheduling import concurrent_round_cost, scheduled_round_cost


def scheme_sizing():
    print("== Scheme sizing for a 20 m warehouse cell ==")
    table = Table(
        ["pulse shapes", "slots (paper)", "slots (safe)",
         "capacity (paper)", "capacity (safe)"]
    )
    for n_shapes in (3, 10, 50, 100):
        table.add_row(
            [
                n_shapes,
                paper_slot_count(20.0),
                safe_slot_count(20.0),
                paper_slot_count(20.0) * n_shapes,
                safe_slot_count(20.0) * n_shapes,
            ]
        )
    table.print()
    print(
        "\nThe paper's >1500 figure is the 'paper' column at ~100 shapes; "
        "the 'safe' column applies the round-trip slot sizing."
    )


def live_round():
    print("\n== One live 9-asset round (4 slots x 3 shapes) ==")
    session = build_session(seed=21)
    result = session.run_round()
    identified = sum(outcome.identified for outcome in result.outcomes)
    print(f"identified {identified}/9 assets from a single CIR:")
    for outcome in result.outcomes:
        estimate = (
            f"{outcome.estimated_distance_m:5.2f} m"
            if outcome.estimated_distance_m is not None
            else "  -  "
        )
        print(
            f"  asset {outcome.responder_id}: slot {outcome.assigned_slot}, "
            f"shape s{outcome.assigned_shape + 1}, distance {estimate} "
            f"(true {outcome.true_distance_m:.2f} m)"
        )


def fleet_costs():
    print("\n== Network cost vs fleet size (full network ranging) ==")
    table = Table(
        ["assets", "sched msgs", "conc msgs", "sched dur [s]",
         "conc dur [s]", "sched energy [J]", "conc energy [J]"]
    )
    for n in (5, 10, 25, 50, 100):
        scheduled = scheduled_round_cost(n)
        concurrent = concurrent_round_cost(n)
        table.add_row(
            [
                n,
                scheduled.messages,
                concurrent.messages,
                round(scheduled.duration_s, 3),
                round(concurrent.duration_s, 3),
                round(scheduled.energy_j, 3),
                round(concurrent.energy_j, 3),
            ]
        )
    table.print()
    n = 100
    print(
        f"\nAt {n} assets, concurrent ranging cuts messages by "
        f"{scheduled_round_cost(n).messages / concurrent_round_cost(n).messages:.0f}x "
        f"and round duration by "
        f"{scheduled_round_cost(n).duration_s / concurrent_round_cost(n).duration_s:.0f}x."
    )


def main():
    scheme_sizing()
    live_round()
    fleet_costs()


if __name__ == "__main__":
    main()
