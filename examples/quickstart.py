#!/usr/bin/env python
"""Quickstart: one concurrent ranging round, end to end.

Three responders at 3, 6, and 10 m (the paper's Fig. 4 layout) answer a
single broadcast; the initiator reads all three distances and identities
out of one channel impulse response.

Run:  python examples/quickstart.py
"""

from repro.protocol.concurrent import ConcurrentRangingSession


def ascii_cir(magnitude, width=72, height=8):
    """A tiny ASCII rendering of the CIR magnitude."""
    import numpy as np

    bins = np.array_split(magnitude, width)
    levels = np.array([chunk.max() for chunk in bins])
    levels = levels / levels.max()
    rows = []
    for row in range(height, 0, -1):
        threshold = row / height
        rows.append(
            "".join("#" if level >= threshold else " " for level in levels)
        )
    return "\n".join(rows)


def main():
    session = ConcurrentRangingSession.build(
        responder_distances_m=[3.0, 6.0, 10.0],
        n_shapes=3,  # one pulse shape per responder -> identifiable
        seed=42,
        # Assume a transceiver without the DW1000's ~8 ns delayed-TX
        # quantisation (the paper's "next-generation" remark); set to
        # False for faithful DW1000 behaviour.
        compensate_tx_quantization=True,
    )

    result = session.run_round()

    print("Captured CIR (normalized magnitude):")
    print(ascii_cir(result.capture.normalized()[:300]))
    print()
    print(f"Anchor distance from SS-TWR (Eq. 2): {result.d_twr_m:.3f} m")
    print()
    print("Decoded responders:")
    for outcome in result.outcomes:
        status = "OK " if outcome.identified else "?? "
        estimate = (
            f"{outcome.estimated_distance_m:6.3f} m"
            if outcome.estimated_distance_m is not None
            else "   -   "
        )
        print(
            f"  {status} responder {outcome.responder_id} "
            f"(slot {outcome.assigned_slot}, shape {outcome.assigned_shape}): "
            f"estimated {estimate}, true {outcome.true_distance_m:.3f} m"
        )
    print()
    trace = result.trace.summary()
    print(
        f"Cost of the round: {trace['messages']:.0f} transmissions, "
        f"{trace['airtime_s'] * 1e6:.0f} us total airtime, "
        f"{trace['utilization'] * 100:.0f} % channel utilization."
    )
    print(
        "A scheduled SS-TWR round for the same three distances would need "
        "6 messages in 6 sequential channel slots."
    )


if __name__ == "__main__":
    main()
