#!/usr/bin/env python
"""Overlapping-response stress test — Sect. VI, interactively.

Two forklifts carry tags at exactly the same distance from the gateway,
so their responses collide in the CIR.  This example sweeps the true
response separation and shows where the threshold baseline loses the
second tag while search-and-subtract keeps resolving it.

Run:  python examples/overlap_stress.py
"""

import numpy as np

from repro.analysis.tables import Table
from repro.constants import CIR_SAMPLING_PERIOD_S
from repro.core.detection import SearchAndSubtract, SearchAndSubtractConfig
from repro.core.threshold import ThresholdConfig, ThresholdDetector
from repro.signal.pulses import dw1000_pulse
from repro.signal.sampling import place_pulse

TRIALS = 120
SNR_DB = 28.0


def both_found(detections, truths, tolerance=1.5):
    available = list(detections)
    for truth in truths:
        best, best_err = None, tolerance
        for det in available:
            err = abs(det.index - truth)
            if err <= best_err:
                best, best_err = det, err
        if best is None:
            return False
        available.remove(best)
    return True


def main():
    rng = np.random.default_rng(2024)
    pulse = dw1000_pulse()
    search = SearchAndSubtract(
        pulse, SearchAndSubtractConfig(max_responses=2, upsample_factor=8)
    )
    threshold = ThresholdDetector(
        pulse, ThresholdConfig(max_responses=2, upsample_factor=8)
    )
    amplitude = 10 ** (SNR_DB / 20.0)

    table = Table(
        ["separation [ns]", "search&subtract [%]", "threshold [%]"],
        title=f"both-tag detection rate ({TRIALS} trials per row)",
    )
    for separation_ns in (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0):
        wins = {"search": 0, "threshold": 0}
        for _ in range(TRIALS):
            positions = (
                400.0,
                400.0 + separation_ns * 1e-9 / CIR_SAMPLING_PERIOD_S,
            )
            cir = np.zeros(1016, dtype=complex)
            for position in positions:
                phase = np.exp(1j * rng.uniform(0, 2 * np.pi))
                place_pulse(
                    cir, pulse.samples.astype(complex), position, amplitude * phase
                )
            cir += (
                rng.standard_normal(1016) + 1j * rng.standard_normal(1016)
            ) / np.sqrt(2)
            if both_found(
                search.detect(cir, CIR_SAMPLING_PERIOD_S, 1.0), positions
            ):
                wins["search"] += 1
            if both_found(
                threshold.detect(cir, CIR_SAMPLING_PERIOD_S, 1.0), positions
            ):
                wins["threshold"] += 1
        table.add_row(
            [
                separation_ns,
                100.0 * wins["search"] / TRIALS,
                100.0 * wins["threshold"] / TRIALS,
            ]
        )
    table.print()
    print(
        "\nPaper reference (responders at the same 4 m distance, only "
        "overlapping trials): search-and-subtract 92.6 %, threshold 48 %."
    )


if __name__ == "__main__":
    main()
